//! [`SimurghFs`]: the public file system, tying together allocators,
//! directory protocols, the data path, security and recovery.
//!
//! One `SimurghFs` corresponds to one mount of one NVMM region. Independent
//! "processes" are threads sharing the instance through an `Arc` — they
//! coordinate exclusively through the NVMM region and the volatile shared
//! maps, mirroring the paper's processes sharing a DAX mapping and shared
//! DRAM. There is no central metadata service: every operation is executed
//! entirely by its calling thread.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simurgh_fsapi::fs::{DirEntry, FileSystem, OpenTable, ProcCtx};
use simurgh_fsapi::types::{access, Fd, FileMode, FileType, FsStats, OpenFlags, SeekFrom, Stat};
use simurgh_fsapi::{path, FsError, FsResult, OpTimers, TimerCategory};
use simurgh_pmem::layout::Carver;
use simurgh_pmem::{PPtr, PmemRegion, PAGE_SIZE};
use simurgh_protfn::SecurityMode;

use crate::alloc::{BlockAlloc, MetaAllocator};
use crate::compact;
use crate::dindex::DirIndex;
use crate::dir::{self, DirEnv};
use crate::file::{self, FileEnv};
use crate::obj::dirblock::{DirBlock, DIRBLOCK_SIZE};
use crate::obj::inode::{Extent, Inode};
use crate::obj::{self};
use crate::obs::{self, FsOp};
use crate::recovery::{self, RecoveryReport};
use crate::security::{OpClass, Security};
use crate::shared;
use crate::super_block::{PoolKind, Superblock};

const SYMLINK_HOPS: usize = 16;

/// Mount/format configuration.
#[derive(Clone)]
pub struct SimurghConfig {
    /// Per-call security cost model used when `charge_security_cost` is on.
    pub security: SecurityMode,
    /// Busy-wait the per-call security cost (benchmark fidelity; off for
    /// plain unit tests).
    pub charge_security_cost: bool,
    /// Relaxed shared-file writes: skip the per-file write lock (Fig. 7k).
    pub relaxed_writes: bool,
    /// Block-allocator segments; default 2 × available parallelism (§4.2).
    pub segments: Option<usize>,
    /// Busy-flag hold limit before decentralized line recovery kicks in.
    pub line_max_hold: Duration,
    /// Per-file lock hold limit before a crashed holder is presumed.
    pub file_max_hold: Duration,
}

impl Default for SimurghConfig {
    fn default() -> Self {
        SimurghConfig {
            security: SecurityMode::Jmpp,
            charge_security_cost: false,
            relaxed_writes: false,
            segments: None,
            line_max_hold: dir::DEFAULT_LINE_MAX_HOLD,
            file_max_hold: file::DEFAULT_FILE_MAX_HOLD,
        }
    }
}

impl SimurghConfig {
    fn segment_count(&self) -> usize {
        self.segments.unwrap_or_else(|| {
            2 * std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
    }
}

#[derive(Debug, Clone)]
struct OpenFile {
    ino: Inode,
    pos: u64,
    flags: OpenFlags,
    /// The file's extent mirror, shared by every descriptor on this inode
    /// (cloned out of the [`OpenState`] at open time).
    cursor: Arc<file::FileCursor>,
}

#[derive(Debug, Default, Clone)]
struct OpenState {
    refs: u32,
    /// All directory entries are gone; free the inode on last close.
    orphaned: bool,
    /// One extent cursor cache per open inode (§4.3 data path). Dropped
    /// with the state on last close, so an unopened file carries no
    /// volatile map and a fresh open rebuilds from NVMM.
    cursor: Arc<file::FileCursor>,
}

/// Shards of the open-state map. Create-heavy shared workloads take this
/// lock once per open/close; a single global mutex shows up at 2+ threads.
const OPEN_SHARDS: usize = 16;

/// The Simurgh file system.
pub struct SimurghFs {
    region: Arc<PmemRegion>,
    blocks: Arc<BlockAlloc>,
    meta: Arc<MetaAllocator>,
    root: Inode,
    opens: OpenTable<OpenFile>,
    open_states: Vec<Mutex<HashMap<u64, OpenState>>>,
    clock: AtomicU64,
    cfg: SimurghConfig,
    timers: OpTimers,
    sec: Security,
    recovery: RecoveryReport,
    /// Shared-DRAM directory index (paper Fig. 3 volatile metadata).
    index: DirIndex,
    /// Probe accounting for the directory hot paths.
    dir_stats: dir::DirStats,
    /// Probe accounting for the file data hot paths.
    data_stats: file::DataStats,
    /// Unified observability registry: per-op latency histograms plus the
    /// single `to_json` export point for every counter battery.
    obs: obs::ObsRegistry,
    /// Fragmentation/compaction counter battery (`frag` obs section).
    frag: compact::FragStats,
    /// Compactor candidate queue + pressure water-mark (volatile; listed
    /// in [`shared::REBUILDABLE_CACHES`]).
    compactq: compact::CompactQueue,
    /// This instance joined via [`SimurghFs::mount_shared`]: unmount goes
    /// through the attach-count protocol and only the last process out
    /// writes the clean flag.
    shared_mode: bool,
}

impl SimurghFs {
    /// Formats a fresh file system onto `region` and mounts it.
    pub fn format(region: Arc<PmemRegion>, cfg: SimurghConfig) -> FsResult<Self> {
        // Formatting is part of the §3.2 bootstrap and runs with OS
        // privilege, so it works on regions already marked as kernel pages.
        let _boot = simurgh_protfn::cpl::KernelGuard::enter();
        let mut carver = Carver::new(region.len() as u64);
        carver.take(PAGE_SIZE as u64, PAGE_SIZE as u64).map_err(|_| FsError::NoSpace)?;
        // The cross-process block-claim bitmap sits right after the
        // superblock page; exclusive mounts ignore it, shared mounts
        // republish it at attach time (see `crate::shared`).
        let bm_bytes = shared::bitmap_bytes(region.len());
        let bm = carver.take(bm_bytes, PAGE_SIZE as u64).map_err(|_| FsError::NoSpace)?;
        let data = carver.remainder().map_err(|_| FsError::NoSpace)?;
        Superblock::format(&region, PPtr::NULL, data);
        region.zero(bm.start, bm_bytes as usize);
        shared::record_bitmap_geometry(&region, bm.start, bm_bytes / 8);
        shared::reset(&region);
        let blocks = Arc::new(BlockAlloc::new(data, cfg.segment_count()));
        let meta = Arc::new(MetaAllocator::new(region.clone(), blocks.clone()));
        // Root inode + first hash block.
        let root_ptr = meta.alloc(PoolKind::Inode)?;
        let root = Inode(root_ptr);
        root.init(&region, FileMode::dir(0o755), 0, 0, 2, 1);
        let rblk = meta.alloc(PoolKind::DirBlock)?;
        DirBlock(rblk).init(&region, true);
        root.set_extent(&region, 0, Extent { start: rblk.off(), len: DIRBLOCK_SIZE });
        region.persist(root_ptr, crate::obj::inode::INODE_SIZE as usize);
        obj::clear_dirty(&region, rblk);
        obj::clear_dirty(&region, root_ptr);
        Superblock::set_root(&region, root_ptr);
        let fs = Self::assemble(region, blocks, meta, root, cfg, RecoveryReport::default());
        fs.index.mark_complete(rblk);
        fs.index.set_tail(rblk, rblk);
        Ok(fs)
    }

    /// Mounts an existing file system **exclusively**, running crash
    /// recovery if the region was not cleanly unmounted. This is the
    /// recovery entry point after a whole-process-group crash: it also
    /// resets the (volatile-semantics) shared-mount coordination words, so
    /// stale `UP`/attach state leaked by `kill -9`'d processes cannot
    /// divert it. Concurrent mounts of the same region file must use
    /// [`mount_shared`](Self::mount_shared) instead.
    pub fn mount(region: Arc<PmemRegion>, cfg: SimurghConfig) -> FsResult<Self> {
        if !Superblock::is_valid(&region) {
            return Err(FsError::Corrupt("bad superblock magic"));
        }
        shared::reset(&region);
        Self::mount_inner(region, cfg)
    }

    /// Joins a multi-process mount of a shared (file-backed) region. The
    /// first process in wins the `DOWN → INITIALIZING` race and runs the
    /// full recovery mount, then publishes the block-claim bitmap; later
    /// processes attach by rebuilding every volatile cache from media alone
    /// (bitmap → block free lists, header scan → metadata stacks, empty
    /// directory index that converges verify-on-use). See `crate::shared`
    /// for the ownership protocol.
    pub fn mount_shared(region: Arc<PmemRegion>, cfg: SimurghConfig) -> FsResult<Self> {
        let _boot = simurgh_protfn::cpl::KernelGuard::enter();
        if !Superblock::is_valid(&region) {
            return Err(FsError::Corrupt("bad superblock magic"));
        }
        if shared::bitmap_geometry(&region).is_none() {
            return Err(FsError::Corrupt("region formatted without a claim bitmap"));
        }
        match shared::begin_attach(&region)? {
            shared::AttachRole::Recoverer => {
                let fs = match Self::mount_inner(region.clone(), cfg) {
                    Ok(fs) => fs,
                    Err(e) => {
                        shared::abort_init(&region);
                        return Err(e);
                    }
                };
                // Geometry is re-read after the recovery mount: growth
                // adoption inside `mount_inner` may have relocated the
                // claim bitmap to the tail of the grown region.
                let (bm_start, bm_words) = shared::bitmap_geometry(&region)
                    .ok_or(FsError::Corrupt("claim bitmap geometry lost"))?;
                fs.blocks.publish_shared(region.clone(), bm_start, bm_words);
                fs.index.disable_negative_authority();
                shared::publish_up(&region);
                Ok(SimurghFs { shared_mode: true, ..fs })
            }
            shared::AttachRole::Attacher => {
                let t_mount = std::time::Instant::now();
                let (bm_start, bm_words) = shared::bitmap_geometry(&region)
                    .ok_or(FsError::Corrupt("claim bitmap geometry lost"))?;
                let data = Superblock::data_extent(&region);
                let blocks = Arc::new(BlockAlloc::attach(
                    data,
                    cfg.segment_count(),
                    region.clone(),
                    bm_start,
                    bm_words,
                ));
                let meta = Arc::new(MetaAllocator::new(region.clone(), blocks.clone()));
                meta.adopt_from_scan();
                let root = Inode(Superblock::root_inode(&region));
                let fs =
                    Self::assemble(region, blocks, meta, root, cfg, RecoveryReport::default());
                // No index rebuild: a walk would race live peers. Start
                // empty; positive hints fill in on use and misses always
                // verify against the persistent chains.
                fs.index.disable_negative_authority();
                fs.obs.record(FsOp::Mount, t_mount.elapsed());
                Ok(SimurghFs { shared_mode: true, ..fs })
            }
        }
    }

    /// The exclusive-recovery mount body, shared by [`mount`](Self::mount)
    /// and the recoverer arm of [`mount_shared`](Self::mount_shared) (which
    /// must *not* reset the coordination words — it owns `INITIALIZING`).
    fn mount_inner(region: Arc<PmemRegion>, cfg: SimurghConfig) -> FsResult<Self> {
        // Mounting (recovery included) is bootstrap work: OS privilege.
        let _boot = simurgh_protfn::cpl::KernelGuard::enter();
        let t_mount = std::time::Instant::now();
        if !Superblock::is_valid(&region) {
            return Err(FsError::Corrupt("bad superblock magic"));
        }
        Self::adopt_growth(&region);
        let (blocks, meta, mut report) = recovery::recover(&region, cfg.segment_count())?;
        let root = Inode(Superblock::root_inode(&region));
        Superblock::set_clean(&region, false);
        let fs = Self::assemble(region, blocks, meta, root, cfg, RecoveryReport::default());
        // Rebuild the shared-DRAM structures (second half of the paper's
        // recovery procedure) and account its time in the report.
        let t = std::time::Instant::now();
        fs.rebuild_index();
        report.rebuild_time = t.elapsed();
        let fs = SimurghFs { recovery: report, ..fs };
        // Mount and recovery phases land in the same histograms as the
        // regular ops, so `paper obs` reports them alongside.
        fs.obs.record(FsOp::RecoverMark, fs.recovery.mark_time);
        fs.obs.record(FsOp::RecoverRepair, fs.recovery.repair_time);
        fs.obs.record(FsOp::RecoverSweep, fs.recovery.sweep_time);
        fs.obs.record(FsOp::RecoverRebuild, fs.recovery.rebuild_time);
        fs.obs.record(FsOp::Mount, t_mount.elapsed());
        Ok(fs)
    }

    /// Adopts a backing file that was grown since the recorded geometry
    /// (aged-image capacity scale-up): lays a fresh, larger claim bitmap at
    /// the *tail* of the grown region and extends the data extent over the
    /// new space, keeping it contiguous. The old bitmap pages below the
    /// data start become dead slack — a one-time, bounded cost per growth.
    ///
    /// Runs only under the exclusive-recovery mount, before the allocator
    /// is rebuilt, so the larger extent and bitmap are what recovery's
    /// mark-and-sweep (and a subsequent `publish_shared`) observe. The
    /// whole sequence is idempotent and keyed off `len() > region_len`,
    /// so a crash mid-adoption simply re-runs it on the next mount.
    fn adopt_growth(region: &PmemRegion) {
        let recorded = Superblock::region_len(region);
        let new_len = region.len() as u64;
        if new_len <= recorded {
            return;
        }
        let data = Superblock::data_extent(region);
        let bm_bytes = shared::bitmap_bytes(region.len());
        // new_len and bm_bytes are page multiples, so the tail bitmap is
        // page aligned by construction.
        let bm_start = new_len - bm_bytes;
        let new_data_len = bm_start.saturating_sub(data.start.off());
        if new_data_len <= data.len {
            // Growth too small to pay for the larger bitmap: keep the old
            // geometry; the mapping stays valid (recorded <= len).
            return;
        }
        region.zero(PPtr::new(bm_start), bm_bytes as usize);
        shared::record_bitmap_geometry(region, PPtr::new(bm_start), bm_bytes / 8);
        Superblock::record_growth(
            region,
            simurgh_pmem::layout::Extent { start: data.start, len: new_data_len },
        );
    }

    /// Walks the tree and rebuilds the shared-DRAM directory index.
    fn rebuild_index(&self) {
        let env = self.dir_env();
        let mut stack = vec![self.root];
        while let Some(ino) = stack.pop() {
            if ino.mode(&self.region).ftype != FileType::Directory {
                continue;
            }
            let Ok(first) = self.dir_block_of(ino) else {
                continue;
            };
            dir::reindex_dir(&env, first);
            for (_, ftype, child) in dir::scan(&env, first) {
                if ftype == FileType::Directory && !child.is_null() {
                    stack.push(Inode(child));
                }
            }
        }
    }

    fn assemble(
        region: Arc<PmemRegion>,
        blocks: Arc<BlockAlloc>,
        meta: Arc<MetaAllocator>,
        root: Inode,
        cfg: SimurghConfig,
        recovery: RecoveryReport,
    ) -> Self {
        let sec = if cfg.charge_security_cost {
            Security::charging(cfg.security)
        } else {
            Security::disabled()
        };
        // Mounted file systems run with the append-path tail reservation on
        // (group commit); raw-allocator users keep the exact default.
        blocks.set_tail_reserve(crate::alloc::blocks::DEFAULT_TAIL_RESERVE);
        Superblock::set_clean(&region, false);
        let fs = SimurghFs {
            region,
            blocks,
            meta,
            root,
            opens: OpenTable::new(),
            open_states: (0..OPEN_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            clock: AtomicU64::new(2),
            cfg,
            timers: OpTimers::default(),
            sec,
            recovery,
            index: DirIndex::new(),
            dir_stats: dir::DirStats::default(),
            data_stats: file::DataStats::default(),
            obs: obs::ObsRegistry::default(),
            frag: compact::FragStats::default(),
            compactq: compact::CompactQueue::default(),
            shared_mode: false,
        };
        // Trace every sfence boundary. Regions produced by `simulate_crash`
        // are fresh, so each format/mount re-installs the hook.
        fs.region.set_fence_hook(Box::new(|n| {
            obs::trace(obs::EventKind::Fence, n, 0);
        }));
        fs
    }

    /// Installs full protected-function enforcement (bootstrap, §3.2).
    pub fn with_enforcement(mut self, domain: Arc<simurgh_protfn::ProtectedDomain>) -> Self {
        self.sec = Security::enforced(domain, self.cfg.security, self.cfg.charge_security_cost);
        self
    }

    /// Cleanly unmounts: marks the region clean so the next mount skips
    /// repair. The instance is consumed. Shared mounts detach instead; only
    /// the last process out writes the clean flag — a `kill -9`'d peer
    /// never detaches, leaving the region unclean for the next recovery.
    pub fn unmount(self) {
        // Un-claim this thread's parked refill slots and return its block
        // reservation: a clean unmount must leave no allocated-but-
        // unreachable objects behind. (Other threads' parked batches can't
        // be reached from here; the next mount's sweep frees those.)
        self.quiesce_thread_caches();
        if self.shared_mode {
            if shared::detach(&self.region) {
                Superblock::set_clean(&self.region, true);
            }
        } else {
            Superblock::set_clean(&self.region, true);
        }
    }

    /// Whether this instance is part of a multi-process shared mount.
    pub fn is_shared(&self) -> bool {
        self.shared_mode
    }

    /// The recovery report of the mount that produced this instance.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Execution-time breakdown counters (Table 1 / Fig. 10 harness).
    pub fn timers(&self) -> &OpTimers {
        &self.timers
    }

    /// The underlying region (crash-test harness).
    pub fn region(&self) -> &Arc<PmemRegion> {
        &self.region
    }

    /// Block allocator statistics (benchmark assertions).
    pub fn block_alloc(&self) -> &Arc<BlockAlloc> {
        &self.blocks
    }

    /// Metadata allocator statistics (group-commit trip assertions).
    pub fn meta_alloc(&self) -> &Arc<MetaAllocator> {
        &self.meta
    }

    /// Returns the calling thread's allocator caches — pre-claimed metadata
    /// refill slots and the parked tail reservation — to the shared pools.
    /// An orderly quiesce before handoff or a planned crash witness; caches
    /// abandoned by `kill -9` are reclaimed by recovery instead.
    pub fn quiesce_thread_caches(&self) {
        self.meta.drain_thread_cache();
        self.blocks.release_thread_reservation();
    }

    /// The mount's resource-fault injector: arms ENOSPC at the *k*-th
    /// metadata or data-block allocation (crash-matrix harness).
    pub fn alloc_faults(&self) -> &Arc<crate::alloc::AllocFaults> {
        self.meta.faults()
    }

    /// Snapshot of the directory probe counters (scaling assertions and the
    /// bench harness's stats export).
    pub fn dir_stats(&self) -> dir::DirStatsSnapshot {
        self.dir_stats.snapshot()
    }

    /// Snapshot of the data-path probe counters (scaling assertions and the
    /// bench harness's `paper datastats` export).
    pub fn data_stats(&self) -> file::DataStatsSnapshot {
        self.data_stats.snapshot()
    }

    /// The unified observability registry of this mount (latency histograms
    /// and the trace-ring export point).
    pub fn obs(&self) -> &obs::ObsRegistry {
        &self.obs
    }

    /// Number of descriptors currently open across every owner id — the
    /// gateway's reap tests assert this returns to zero after a client is
    /// killed mid-pipeline.
    pub fn open_count(&self) -> usize {
        self.opens.len()
    }

    /// One JSON document bundling every counter battery of this mount:
    /// latency histograms, directory and data-path probes, pmem traffic,
    /// execution-time breakdown and the fault injector (`paper obs --json`).
    pub fn obs_json(&self) -> String {
        self.obs.to_json(
            &self.dir_stats(),
            &self.data_stats(),
            &self.region.stats().snapshot(),
            &self.timers,
            self.meta.faults(),
            &self.meta,
            &self.blocks,
            crate::alloc::lock_stats(),
            &self.frag,
            self.extent_census(),
        )
    }

    /// The fragmentation/compaction counter battery of this mount.
    pub fn frag_stats(&self) -> &compact::FragStats {
        &self.frag
    }

    /// Census for the `frag` obs section: regular files reachable from the
    /// root and their total extent-map entries. A full tree walk — the obs
    /// export and the aging harness are cold paths.
    pub fn extent_census(&self) -> (u64, u64) {
        let denv = self.dir_env();
        let (mut files, mut extents) = (0u64, 0u64);
        let mut stack = vec![self.root];
        while let Some(ino) = stack.pop() {
            let Ok(first) = self.dir_block_of(ino) else {
                continue;
            };
            for (_, ftype, child) in dir::scan(&denv, first) {
                if child.is_null() {
                    continue;
                }
                match ftype {
                    FileType::Directory => stack.push(Inode(child)),
                    FileType::Regular => {
                        files += 1;
                        file::for_each_extent(&self.region, Inode(child), |_, _| extents += 1);
                    }
                    FileType::Symlink => {}
                }
            }
        }
        (files, extents)
    }

    /// One online compaction pass: harvests fragmented regular files from
    /// a tree walk, then relocates up to `max_files` of them (most
    /// fragmented first) onto freshly allocated contiguous runs. Safe
    /// against concurrent use: every file moves under its per-file write
    /// lock, the map swap is guarded by the relocation journal
    /// ([`compact::journal`]), and open handles' extent cursors are
    /// generation-invalidated. Returns `(files_moved, blocks_moved)`.
    pub fn compact(&self, max_files: usize) -> (u64, u64) {
        self.harvest_candidates();
        let (mut nfiles, mut nblocks) = (0u64, 0u64);
        for _ in 0..max_files {
            // Ascending fragmentation order, so `pop` yields worst-first.
            let Some(p) = self.compactq.queue.lock().unwrap().pop() else {
                break;
            };
            let ino = Inode(p);
            // Revalidate: the file may have been unlinked since harvest.
            let h = obj::header(&self.region, p);
            if !obj::is_valid(h) || obj::Tag::from_header(h) != Some(obj::Tag::Inode) {
                continue;
            }
            if ino.mode(&self.region).ftype != FileType::Regular {
                continue;
            }
            let cursor = self.cursor_of(ino);
            let mut env = self.file_env();
            if let Some(c) = &cursor {
                env = env.with_cursor(c);
            }
            let _w = file::lock_write(&env, ino);
            if let Ok(compact::Reloc::Moved(b)) = compact::relocate_file(&env, ino, &self.frag)
            {
                nfiles += 1;
                nblocks += b;
            }
        }
        self.frag.passes.fetch_add(1, Ordering::Relaxed);
        (nfiles, nblocks)
    }

    /// Water-mark trigger: runs a bounded compaction pass when the block
    /// allocator recorded new fragmentation pressure (an opportunistic
    /// allocation pass that failed with free capacity on hand) since the
    /// last check. Cheap when idle — two atomic loads.
    pub fn maybe_compact(&self) -> (u64, u64) {
        let p = self.blocks.frag_pressure();
        if p <= self.compactq.seen_pressure.swap(p, Ordering::Relaxed) {
            return (0, 0);
        }
        self.compact(8)
    }

    /// Tree walk feeding [`compact`](Self::compact): fragmented regular
    /// files (2+ extents or any overflow chain), sorted ascending by
    /// extent count so the back of the queue is the worst offender.
    fn harvest_candidates(&self) {
        let denv = self.dir_env();
        let mut found: Vec<(u64, PPtr)> = Vec::new();
        let mut stack = vec![self.root];
        while let Some(ino) = stack.pop() {
            let Ok(first) = self.dir_block_of(ino) else {
                continue;
            };
            for (_, ftype, child) in dir::scan(&denv, first) {
                if child.is_null() {
                    continue;
                }
                match ftype {
                    FileType::Directory => stack.push(Inode(child)),
                    FileType::Regular => {
                        let c = Inode(child);
                        let mut n = 0u64;
                        file::for_each_extent(&self.region, c, |_, _| n += 1);
                        if n >= 2 || !c.ext_next(&self.region).is_null() {
                            found.push((n, child));
                        }
                    }
                    FileType::Symlink => {}
                }
            }
        }
        found.sort_by_key(|&(n, _)| n);
        *self.compactq.queue.lock().unwrap() = found.into_iter().map(|(_, p)| p).collect();
    }

    /// Times one `FileSystem` op: latency histogram (`obs`) plus the
    /// Table 1 execution-share counter, in one wrapper.
    fn measure<R>(&self, op: FsOp, f: impl FnOnce() -> R) -> R {
        let _t = self.obs.timer(op);
        self.timers.time(TimerCategory::Fs, f)
    }

    /// Test support: the shared-DRAM directory index of this mount.
    #[doc(hidden)]
    pub fn testing_index(&self) -> &DirIndex {
        &self.index
    }

    /// Test support: resolves a directory path to its first hash block.
    #[doc(hidden)]
    pub fn testing_dir_block(&self, path: &str) -> FsResult<(Arc<PmemRegion>, DirBlock)> {
        let ino = self.resolve(&ProcCtx::root(u32::MAX), path, true)?;
        Ok((self.region.clone(), self.dir_block_of(ino)?))
    }

    /// Test support: a directory environment bound to this mount.
    #[doc(hidden)]
    pub fn testing_dir_env(&self) -> DirEnv<'_> {
        self.dir_env()
    }

    // ----- internal helpers -------------------------------------------------

    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn dir_env(&self) -> DirEnv<'_> {
        let mut env = DirEnv::new(&self.region, &self.meta)
            .with_index(&self.index)
            .with_stats(&self.dir_stats);
        env.max_hold = self.cfg.line_max_hold;
        env
    }

    fn file_env(&self) -> FileEnv<'_> {
        let mut env = FileEnv::new(&self.region, &self.blocks)
            .with_stats(&self.data_stats)
            .with_faults(self.meta.faults());
        env.relaxed = self.cfg.relaxed_writes;
        env.max_hold = self.cfg.file_max_hold;
        env
    }

    fn dir_block_of(&self, ino: Inode) -> FsResult<DirBlock> {
        if ino.mode(&self.region).ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        let e = ino.extent(&self.region, 0);
        if e.is_empty() {
            return Err(FsError::Corrupt("directory without hash block"));
        }
        Ok(DirBlock(PPtr::new(e.start)))
    }

    fn check_perm(&self, ctx: &ProcCtx, ino: Inode, want: u16) -> FsResult<()> {
        let m = ino.mode(&self.region);
        if ctx.creds.may(want, m.perm, ino.uid(&self.region), ino.gid(&self.region)) {
            Ok(())
        } else {
            Err(FsError::Access)
        }
    }

    fn read_symlink(&self, ino: Inode) -> FsResult<String> {
        let env = self.file_env();
        let len = ino.size(&self.region) as usize;
        let mut buf = vec![0u8; len];
        let n = file::read_at(&env, ino, 0, &mut buf);
        buf.truncate(n);
        String::from_utf8(buf).map_err(|_| FsError::Corrupt("non-utf8 symlink target"))
    }

    /// Resolves path components to an inode, following intermediate (and,
    /// optionally, final) symlinks. Permission: X on every directory walked.
    fn walk(&self, ctx: &ProcCtx, comps: &[&str], follow_final: bool, hops: usize) -> FsResult<Inode> {
        if hops > SYMLINK_HOPS {
            return Err(FsError::TooManyLinks);
        }
        let env = self.dir_env();
        let mut cur = self.root;
        for (i, comp) in comps.iter().enumerate() {
            let first = self.dir_block_of(cur)?;
            self.check_perm(ctx, cur, access::X)?;
            let fe = dir::lookup(&env, first, comp).ok_or(FsError::NotFound)?;
            let ino = Inode(fe.inode(&self.region));
            let is_final = i + 1 == comps.len();
            if fe.is_symlink(&self.region) && (!is_final || follow_final) {
                let target = self.read_symlink(ino)?;
                let tcomps = path::components(&target)?;
                let resolved = self.walk(ctx, &tcomps, true, hops + 1)?;
                if is_final {
                    return Ok(resolved);
                }
                cur = resolved;
            } else {
                cur = ino;
            }
        }
        Ok(cur)
    }

    fn resolve(&self, ctx: &ProcCtx, p: &str, follow_final: bool) -> FsResult<Inode> {
        let comps = path::components(p)?;
        self.walk(ctx, &comps, follow_final, 0)
    }

    /// Resolves the parent directory of `p`, checking W|X on it, and
    /// returns `(parent inode, its first hash block, final name)`.
    fn resolve_parent<'p>(
        &self,
        ctx: &ProcCtx,
        p: &'p str,
    ) -> FsResult<(Inode, DirBlock, &'p str)> {
        let (parent_comps, name) = path::split_parent(p)?;
        let parent = self.walk(ctx, &parent_comps, true, 0)?;
        let first = self.dir_block_of(parent)?;
        self.check_perm(ctx, parent, access::W | access::X)?;
        Ok((parent, first, name))
    }

    /// Allocates and initializes a fresh inode (still dirty; the directory
    /// insert clears it at its step 6).
    fn new_inode(&self, ctx: &ProcCtx, mode: FileMode, nlink: u32) -> FsResult<Inode> {
        let p = self.meta.alloc(PoolKind::Inode)?;
        let ino = Inode(p);
        ino.init(&self.region, mode, ctx.creds.uid, ctx.creds.gid, nlink, self.now());
        self.region.persist(p, crate::obj::inode::INODE_SIZE as usize);
        Ok(ino)
    }

    /// Drops one link of `ino`; frees inode + data when the last link dies
    /// and no descriptor holds it open (orphan handling like POSIX).
    fn drop_link(&self, ino: Inode) {
        let r = &*self.region;
        let nlink = ino.nlink(r).saturating_sub(1);
        if nlink > 0 {
            ino.set_nlink(r, nlink);
            return;
        }
        let mut states = self.open_state_shard(ino).lock();
        if let Some(s) = states.get_mut(&ino.ptr().off()) {
            if s.refs > 0 {
                s.orphaned = true;
                ino.set_nlink(r, 0);
                return;
            }
        }
        drop(states);
        self.destroy_inode(ino);
    }

    fn destroy_inode(&self, ino: Inode) {
        let env = self.file_env();
        if ino.mode(&self.region).ftype == FileType::Directory {
            // Free the hash-block chain.
            let e = ino.extent(&self.region, 0);
            if !e.is_empty() {
                self.index.forget_dir(PPtr::new(e.start));
                let mut blk = PPtr::new(e.start);
                while !blk.is_null() {
                    let next = DirBlock(blk).next(&self.region);
                    self.meta.free(PoolKind::DirBlock, blk);
                    blk = next;
                }
            }
        } else {
            file::free_all(&env, ino);
        }
        self.meta.free(PoolKind::Inode, ino.ptr());
    }

    /// Inodes are pool-allocated at a fixed stride, so dropping the low
    /// bits before taking the modulus spreads neighbours across shards.
    fn open_state_shard(&self, ino: Inode) -> &Mutex<HashMap<u64, OpenState>> {
        &self.open_states[(ino.ptr().off() >> 7) as usize % OPEN_SHARDS]
    }

    /// Takes one open reference and returns the inode's shared extent
    /// cursor (created on first open, shared by every later opener).
    fn open_ref(&self, ino: Inode) -> Arc<file::FileCursor> {
        let mut states = self.open_state_shard(ino).lock();
        let s = states.entry(ino.ptr().off()).or_default();
        s.refs += 1;
        s.cursor.clone()
    }

    /// The shared extent cursor of `ino` if any descriptor holds it open.
    fn cursor_of(&self, ino: Inode) -> Option<Arc<file::FileCursor>> {
        self.open_state_shard(ino).lock().get(&ino.ptr().off()).map(|s| s.cursor.clone())
    }

    fn close_ref(&self, ino: Inode) {
        let mut states = self.open_state_shard(ino).lock();
        let Some(s) = states.get_mut(&ino.ptr().off()) else {
            return;
        };
        s.refs = s.refs.saturating_sub(1);
        if s.refs == 0 {
            let orphaned = s.orphaned;
            states.remove(&ino.ptr().off());
            drop(states);
            if orphaned {
                self.destroy_inode(ino);
            }
        }
    }

    fn with_open(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<OpenFile> {
        self.opens.with(ctx.pid, fd, |o| o.clone())
    }

    fn do_pwrite(&self, open: &OpenFile, data: &[u8], off: u64) -> FsResult<usize> {
        if !open.flags.write {
            return Err(FsError::BadFd);
        }
        let env = self.file_env().with_cursor(&open.cursor);
        let _w = file::lock_write(&env, open.ino);
        let n = self
            .timers
            .time(TimerCategory::Copy, || file::write_at(&env, open.ino, off, data))?;
        open.ino.set_mtime(&self.region, self.now());
        Ok(n)
    }

    fn do_pread(&self, open: &OpenFile, buf: &mut [u8], off: u64) -> FsResult<usize> {
        if !open.flags.read {
            return Err(FsError::BadFd);
        }
        let env = self.file_env().with_cursor(&open.cursor);
        let _r = file::lock_read(&env, open.ino);
        Ok(self.timers.time(TimerCategory::Copy, || file::read_at(&env, open.ino, off, buf)))
    }

    /// The post-resolution half of `open` on an existing inode: type and
    /// permission checks, then O_TRUNC.
    fn open_existing(&self, ctx: &ProcCtx, ino: Inode, flags: OpenFlags) -> FsResult<Inode> {
        let m = ino.mode(&self.region);
        if m.ftype == FileType::Directory && flags.write {
            return Err(FsError::IsDir);
        }
        let mut want = 0;
        if flags.read {
            want |= access::R;
        }
        if flags.write {
            want |= access::W;
        }
        if want != 0 {
            self.check_perm(ctx, ino, want)?;
        }
        if flags.truncate && flags.write && m.ftype == FileType::Regular {
            let mut fenv = self.file_env();
            // Attach the existing openers' shared cursor so the truncate
            // invalidates their mirror too (O_TRUNC from a new descriptor).
            let cursor = self.cursor_of(ino);
            if let Some(c) = &cursor {
                fenv = fenv.with_cursor(c);
            }
            let _w = file::lock_write(&fenv, ino);
            file::truncate(&fenv, ino, 0)?;
        }
        Ok(ino)
    }

    /// `open` with O_CREAT: one walk to the parent serves both the
    /// existence probe and the insert (the naive shape resolves the full
    /// path, fails, and walks the parent again — the extra walk is pure
    /// overhead on create-heavy metadata workloads).
    fn open_create(&self, ctx: &ProcCtx, p: &str, flags: OpenFlags, mode: FileMode) -> FsResult<Inode> {
        let Ok((parent_comps, name)) = path::split_parent(p) else {
            // No final component to create ("/"): open what's there.
            let ino = self.resolve(ctx, p, true)?;
            if flags.excl {
                return Err(FsError::Exists);
            }
            return self.open_existing(ctx, ino, flags);
        };
        let parent = self.walk(ctx, &parent_comps, true, 0)?;
        let first = self.dir_block_of(parent)?;
        self.check_perm(ctx, parent, access::X)?;
        let env = self.dir_env();
        if let Some(fe) = dir::lookup(&env, first, name) {
            if flags.excl {
                return Err(FsError::Exists);
            }
            if fe.is_symlink(&self.region) {
                // A final-component symlink still gets followed; the
                // generic resolver handles hop counting.
                let ino = self.resolve(ctx, p, true)?;
                return self.open_existing(ctx, ino, flags);
            }
            return self.open_existing(ctx, Inode(fe.inode(&self.region)), flags);
        }
        self.check_perm(ctx, parent, access::W | access::X)?;
        path::validate_name(name)?;
        // Group commit: the inode claim + init persists coalesce with the
        // insert's own preparation; `dir::insert` fences them all at once
        // right before publishing the hash-line pointer.
        let scope = self.region.fence_scope();
        let ino = self.new_inode(ctx, FileMode::file(mode.perm), 1)?;
        let inserted = dir::insert(&env, first, name, FileType::Regular, ino.ptr());
        match inserted {
            Ok(_) => {
                drop(scope);
                Ok(ino)
            }
            Err(e) => {
                self.meta.free(PoolKind::Inode, ino.ptr());
                drop(scope);
                // A concurrent creator may have won the race.
                if e == FsError::Exists && !flags.excl {
                    let ino = self.resolve(ctx, p, true)?;
                    self.open_existing(ctx, ino, flags)
                } else {
                    Err(e)
                }
            }
        }
    }
}

impl simurgh_fsapi::Instrumented for SimurghFs {
    fn timers(&self) -> &OpTimers {
        &self.timers
    }
}

impl FileSystem for SimurghFs {
    fn name(&self) -> &str {
        "simurgh"
    }

    fn open(&self, ctx: &ProcCtx, p: &str, flags: OpenFlags, mode: FileMode) -> FsResult<Fd> {
        self.sec.call(OpClass::Walk, || {
            self.measure(FsOp::Open, || {
                let ino = if flags.create {
                    self.open_create(ctx, p, flags, mode)?
                } else {
                    let ino = self.resolve(ctx, p, true)?;
                    self.open_existing(ctx, ino, flags)?
                };
                let pos =
                    if flags.append { ino.size(&self.region) } else { 0 };
                let cursor = self.open_ref(ino);
                Ok(self.opens.insert(ctx.pid, OpenFile { ino, pos, flags, cursor }))
            })
        })
    }

    fn close(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<()> {
        self.sec.call(OpClass::Ctl, || {
            self.measure(FsOp::Close, || {
                let open = self.opens.remove(ctx.pid, fd)?;
                self.close_ref(open.ino);
                Ok(())
            })
        })
    }

    fn read(&self, ctx: &ProcCtx, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        self.sec.call(OpClass::Data, || {
            self.measure(FsOp::Read, || {
                let open = self.with_open(ctx, fd)?;
                let n = self.do_pread(&open, buf, open.pos)?;
                self.opens.with_mut(ctx.pid, fd, |o| o.pos += n as u64)?;
                Ok(n)
            })
        })
    }

    fn write(&self, ctx: &ProcCtx, fd: Fd, data: &[u8]) -> FsResult<usize> {
        self.sec.call(OpClass::Data, || {
            self.measure(FsOp::Write, || {
                let open = self.with_open(ctx, fd)?;
                let off = if open.flags.append {
                    open.ino.size(&self.region)
                } else {
                    open.pos
                };
                let n = self.do_pwrite(&open, data, off)?;
                self.opens.with_mut(ctx.pid, fd, |o| o.pos = off + n as u64)?;
                Ok(n)
            })
        })
    }

    fn pread(&self, ctx: &ProcCtx, fd: Fd, buf: &mut [u8], off: u64) -> FsResult<usize> {
        self.sec.call(OpClass::Data, || {
            self.measure(FsOp::Pread, || {
                let open = self.with_open(ctx, fd)?;
                self.do_pread(&open, buf, off)
            })
        })
    }

    fn pwrite(&self, ctx: &ProcCtx, fd: Fd, data: &[u8], off: u64) -> FsResult<usize> {
        self.sec.call(OpClass::Data, || {
            self.measure(FsOp::Pwrite, || {
                let open = self.with_open(ctx, fd)?;
                self.do_pwrite(&open, data, off)
            })
        })
    }

    fn lseek(&self, ctx: &ProcCtx, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        self.sec.call(OpClass::Ctl, || {
            self.measure(FsOp::Lseek, || {
                let open = self.with_open(ctx, fd)?;
                let size = open.ino.size(&self.region);
                self.opens.with_mut(ctx.pid, fd, |o| {
                    let new = match pos {
                        SeekFrom::Start(s) => s as i128,
                        SeekFrom::Current(d) => o.pos as i128 + d as i128,
                        SeekFrom::End(d) => size as i128 + d as i128,
                    };
                    if new < 0 {
                        return Err(FsError::Invalid);
                    }
                    o.pos = new as u64;
                    Ok(o.pos)
                })?
            })
        })
    }

    fn fsync(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<()> {
        self.sec.call(OpClass::Ctl, || {
            self.measure(FsOp::Fsync, || {
                let _ = self.with_open(ctx, fd)?;
                // Data is persisted eagerly on write; a final fence orders
                // anything still pending.
                self.region.fence();
                Ok(())
            })
        })
    }

    fn fstat(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<Stat> {
        self.sec.call(OpClass::Walk, || {
            self.measure(FsOp::Fstat, || {
                let open = self.with_open(ctx, fd)?;
                Ok(open.ino.stat(&self.region))
            })
        })
    }

    fn ftruncate(&self, ctx: &ProcCtx, fd: Fd, len: u64) -> FsResult<()> {
        self.sec.call(OpClass::Data, || {
            self.measure(FsOp::Ftruncate, || {
                let open = self.with_open(ctx, fd)?;
                if !open.flags.write {
                    return Err(FsError::BadFd);
                }
                let env = self.file_env().with_cursor(&open.cursor);
                let _w = file::lock_write(&env, open.ino);
                file::truncate(&env, open.ino, len)
            })
        })
    }

    fn fallocate(&self, ctx: &ProcCtx, fd: Fd, off: u64, len: u64) -> FsResult<()> {
        self.sec.call(OpClass::Data, || {
            self.measure(FsOp::Fallocate, || {
                let open = self.with_open(ctx, fd)?;
                if !open.flags.write {
                    return Err(FsError::BadFd);
                }
                let env = self.file_env().with_cursor(&open.cursor);
                let _w = file::lock_write(&env, open.ino);
                file::fallocate(&env, open.ino, off, len)
            })
        })
    }

    fn unlink(&self, ctx: &ProcCtx, p: &str) -> FsResult<()> {
        self.sec.call(OpClass::Meta, || {
            self.measure(FsOp::Unlink, || {
                let (_, first, name) = self.resolve_parent(ctx, p)?;
                let env = self.dir_env();
                // Refuse directories (POSIX unlink semantics).
                if let Some(fe) = dir::lookup(&env, first, name) {
                    if fe.ftype(&self.region) == FileType::Directory {
                        return Err(FsError::IsDir);
                    }
                }
                dir::remove(&env, first, name, |fe| {
                    self.drop_link(Inode(fe.inode(&self.region)));
                })
            })
        })
    }

    fn mkdir(&self, ctx: &ProcCtx, p: &str, mode: FileMode) -> FsResult<()> {
        self.sec.call(OpClass::Meta, || {
            self.measure(FsOp::Mkdir, || {
                let (_, first, name) = self.resolve_parent(ctx, p)?;
                path::validate_name(name)?;
                let env = self.dir_env();
                // Group commit: inode + hash-block preparation persists
                // coalesce into one fence before the block's dirty-bit clear
                // (the first point a crash can observe the block as final).
                let scope = self.region.fence_scope();
                let ino = self.new_inode(ctx, FileMode::dir(mode.perm), 2)?;
                let blk = match self.meta.alloc(PoolKind::DirBlock) {
                    Ok(b) => b,
                    Err(e) => {
                        self.meta.free(PoolKind::Inode, ino.ptr());
                        return Err(e);
                    }
                };
                DirBlock(blk).init(&self.region, true);
                ino.set_extent(&self.region, 0, Extent { start: blk.off(), len: DIRBLOCK_SIZE });
                scope.commit();
                obj::clear_dirty(&self.region, blk);
                self.index.mark_complete(blk);
                self.index.set_tail(blk, blk);
                match dir::insert(&env, first, name, FileType::Directory, ino.ptr()) {
                    Ok(_) => Ok(()),
                    Err(e) => {
                        self.meta.free(PoolKind::DirBlock, blk);
                        self.meta.free(PoolKind::Inode, ino.ptr());
                        Err(e)
                    }
                }
            })
        })
    }

    fn rmdir(&self, ctx: &ProcCtx, p: &str) -> FsResult<()> {
        self.sec.call(OpClass::Meta, || {
            self.measure(FsOp::Rmdir, || {
                let (_, first, name) = self.resolve_parent(ctx, p)?;
                let env = self.dir_env();
                let fe = dir::lookup(&env, first, name).ok_or(FsError::NotFound)?;
                if fe.ftype(&self.region) != FileType::Directory {
                    return Err(FsError::NotDir);
                }
                let child = Inode(fe.inode(&self.region));
                let child_blk = self.dir_block_of(child)?;
                if !dir::is_empty(&env, child_blk) {
                    return Err(FsError::NotEmpty);
                }
                dir::remove(&env, first, name, |fe| {
                    // Directories cannot be hard-linked: retire the inode
                    // outright (its conventional nlink of 2 counts the
                    // self-reference, which dies with the directory).
                    let ino = Inode(fe.inode(&self.region));
                    ino.set_nlink(&self.region, 1);
                    self.drop_link(ino);
                })?;
                Ok(())
            })
        })
    }

    fn rename(&self, ctx: &ProcCtx, old: &str, new: &str) -> FsResult<()> {
        self.sec.call(OpClass::Meta, || {
            self.measure(FsOp::Rename, || {
                let (_, src_blk, old_name) = self.resolve_parent(ctx, old)?;
                let (_, dst_blk, new_name) = self.resolve_parent(ctx, new)?;
                path::validate_name(new_name)?;
                let env = self.dir_env();
                let src_fe = dir::lookup(&env, src_blk, old_name).ok_or(FsError::NotFound)?;
                let moving_dir = src_fe.ftype(&self.region) == FileType::Directory;
                if moving_dir {
                    let oc = path::components(old)?;
                    let nc = path::components(new)?;
                    if path::is_descendant(&oc, &nc) {
                        return Err(FsError::Invalid);
                    }
                }
                // Target compatibility checks (POSIX rename).
                if let Some(tfe) = dir::lookup(&env, dst_blk, new_name) {
                    if tfe.inode(&self.region) == src_fe.inode(&self.region) {
                        // Hard links to the same inode: rename is a no-op
                        // that leaves both names (POSIX).
                        return Ok(());
                    }
                    let target_dir = tfe.ftype(&self.region) == FileType::Directory;
                    match (moving_dir, target_dir) {
                        (true, false) => return Err(FsError::NotDir),
                        (false, true) => return Err(FsError::IsDir),
                        (true, true) => {
                            let t = Inode(tfe.inode(&self.region));
                            if !dir::is_empty(&env, self.dir_block_of(t)?) {
                                return Err(FsError::NotEmpty);
                            }
                        }
                        (false, false) => {}
                    }
                }
                let dispose = |fe: crate::obj::fentry::FileEntry| {
                    self.drop_link(Inode(fe.inode(&self.region)));
                };
                if src_blk == dst_blk {
                    dir::rename_same_dir(&env, src_blk, old_name, new_name, dispose)
                } else {
                    dir::rename_cross_dir(&env, src_blk, old_name, dst_blk, new_name, dispose)
                }
            })
        })
    }

    fn stat(&self, ctx: &ProcCtx, p: &str) -> FsResult<Stat> {
        self.sec.call(OpClass::Walk, || {
            self.measure(FsOp::Stat, || {
                let ino = self.resolve(ctx, p, true)?;
                Ok(ino.stat(&self.region))
            })
        })
    }

    fn readdir(&self, ctx: &ProcCtx, p: &str) -> FsResult<Vec<DirEntry>> {
        self.sec.call(OpClass::Walk, || {
            self.measure(FsOp::Readdir, || {
                let ino = self.resolve(ctx, p, true)?;
                self.check_perm(ctx, ino, access::R)?;
                let first = self.dir_block_of(ino)?;
                let env = self.dir_env();
                let mut entries: Vec<DirEntry> = dir::scan(&env, first)
                    .into_iter()
                    .map(|(name, ftype, inode)| DirEntry { name, ftype, ino: inode.off() })
                    .collect();
                entries.sort_by(|a, b| a.name.cmp(&b.name));
                Ok(entries)
            })
        })
    }

    fn symlink(&self, ctx: &ProcCtx, target: &str, linkpath: &str) -> FsResult<()> {
        self.sec.call(OpClass::Meta, || {
            self.measure(FsOp::Symlink, || {
                let (_, first, name) = self.resolve_parent(ctx, linkpath)?;
                path::validate_name(name)?;
                let env = self.dir_env();
                // Group commit over the inode claim + init only: the target
                // write below relies on the data path's own data-before-size
                // fencing, so the scope must not extend over it.
                let scope = self.region.fence_scope();
                let ino = self.new_inode(ctx, FileMode::symlink(), 1)?;
                scope.commit();
                drop(scope);
                let fenv = self.file_env();
                if let Err(e) = file::write_at(&fenv, ino, 0, target.as_bytes()) {
                    file::free_all(&fenv, ino);
                    self.meta.free(PoolKind::Inode, ino.ptr());
                    return Err(e);
                }
                match dir::insert(&env, first, name, FileType::Symlink, ino.ptr()) {
                    Ok(_) => Ok(()),
                    Err(e) => {
                        file::free_all(&fenv, ino);
                        self.meta.free(PoolKind::Inode, ino.ptr());
                        Err(e)
                    }
                }
            })
        })
    }

    fn readlink(&self, ctx: &ProcCtx, p: &str) -> FsResult<String> {
        self.sec.call(OpClass::Walk, || {
            self.measure(FsOp::Readlink, || {
                let ino = self.resolve(ctx, p, false)?;
                if ino.mode(&self.region).ftype != FileType::Symlink {
                    return Err(FsError::Invalid);
                }
                self.read_symlink(ino)
            })
        })
    }

    fn link(&self, ctx: &ProcCtx, existing: &str, new: &str) -> FsResult<()> {
        self.sec.call(OpClass::Meta, || {
            self.measure(FsOp::Link, || {
                let ino = self.resolve(ctx, existing, false)?;
                let ftype = ino.mode(&self.region).ftype;
                if ftype == FileType::Directory {
                    return Err(FsError::IsDir);
                }
                let (_, first, name) = self.resolve_parent(ctx, new)?;
                path::validate_name(name)?;
                let env = self.dir_env();
                ino.set_nlink(&self.region, ino.nlink(&self.region) + 1);
                match dir::insert(&env, first, name, ftype, ino.ptr()) {
                    Ok(_) => Ok(()),
                    Err(e) => {
                        ino.set_nlink(&self.region, ino.nlink(&self.region) - 1);
                        Err(e)
                    }
                }
            })
        })
    }

    fn chmod(&self, ctx: &ProcCtx, p: &str, perm: u16) -> FsResult<()> {
        self.sec.call(OpClass::Ctl, || {
            self.measure(FsOp::Chmod, || {
                let ino = self.resolve(ctx, p, true)?;
                if ctx.creds.uid != 0 && ctx.creds.uid != ino.uid(&self.region) {
                    return Err(FsError::Access);
                }
                let mut m = ino.mode(&self.region);
                m.perm = perm & 0o777;
                ino.set_mode(&self.region, m);
                self.region.persist(ino.ptr().add(8), 4);
                Ok(())
            })
        })
    }

    fn statfs(&self, _ctx: &ProcCtx) -> FsResult<FsStats> {
        self.sec.call(OpClass::Ctl, || {
            self.measure(FsOp::Statfs, || {
                Ok(FsStats {
                    total_bytes: self.region.len() as u64,
                    free_bytes: self.blocks.free_blocks() * crate::BLOCK_SIZE as u64,
                    block_size: crate::BLOCK_SIZE as u32,
                })
            })
        })
    }

    fn set_times(&self, ctx: &ProcCtx, p: &str, atime: u64, mtime: u64) -> FsResult<()> {
        self.sec.call(OpClass::Ctl, || {
            self.measure(FsOp::SetTimes, || {
                let ino = self.resolve(ctx, p, true)?;
                if ctx.creds.uid != 0 && ctx.creds.uid != ino.uid(&self.region) {
                    return Err(FsError::Access);
                }
                ino.set_atime(&self.region, atime);
                ino.set_mtime(&self.region, mtime);
                self.region.persist(ino.ptr().add(32), 16);
                Ok(())
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fs() -> (SimurghFs, ProcCtx) {
        let region = Arc::new(PmemRegion::new(32 << 20));
        let fs = SimurghFs::format(region, SimurghConfig::default()).unwrap();
        (fs, ProcCtx::root(1))
    }

    #[test]
    fn format_creates_usable_root() {
        let (fs, ctx) = small_fs();
        assert_eq!(fs.readdir(&ctx, "/").unwrap().len(), 0);
        let st = fs.stat(&ctx, "/").unwrap();
        assert!(st.is_dir());
    }

    #[test]
    fn full_file_lifecycle() {
        let (fs, ctx) = small_fs();
        fs.write_file(&ctx, "/data.bin", b"payload").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/data.bin").unwrap(), b"payload");
        let st = fs.stat(&ctx, "/data.bin").unwrap();
        assert_eq!(st.size, 7);
        fs.unlink(&ctx, "/data.bin").unwrap();
        assert_eq!(fs.stat(&ctx, "/data.bin").unwrap_err(), FsError::NotFound);
    }

    #[test]
    fn directories_nest_and_enumerate() {
        let (fs, ctx) = small_fs();
        fs.mkdir(&ctx, "/a", FileMode::dir(0o755)).unwrap();
        fs.mkdir(&ctx, "/a/b", FileMode::dir(0o755)).unwrap();
        fs.write_file(&ctx, "/a/b/c.txt", b"x").unwrap();
        let names: Vec<_> = fs.readdir(&ctx, "/a/b").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["c.txt"]);
        assert_eq!(fs.rmdir(&ctx, "/a").unwrap_err(), FsError::NotEmpty);
        fs.unlink(&ctx, "/a/b/c.txt").unwrap();
        fs.rmdir(&ctx, "/a/b").unwrap();
        fs.rmdir(&ctx, "/a").unwrap();
    }

    #[test]
    fn rename_within_and_across_directories() {
        let (fs, ctx) = small_fs();
        fs.mkdir(&ctx, "/d1", FileMode::dir(0o755)).unwrap();
        fs.mkdir(&ctx, "/d2", FileMode::dir(0o755)).unwrap();
        fs.write_file(&ctx, "/d1/f", b"content").unwrap();
        fs.rename(&ctx, "/d1/f", "/d1/g").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/d1/g").unwrap(), b"content");
        fs.rename(&ctx, "/d1/g", "/d2/h").unwrap();
        assert_eq!(fs.stat(&ctx, "/d1/g").unwrap_err(), FsError::NotFound);
        assert_eq!(fs.read_to_vec(&ctx, "/d2/h").unwrap(), b"content");
    }

    #[test]
    fn rename_dir_into_own_subtree_rejected() {
        let (fs, ctx) = small_fs();
        fs.mkdir(&ctx, "/top", FileMode::dir(0o755)).unwrap();
        fs.mkdir(&ctx, "/top/sub", FileMode::dir(0o755)).unwrap();
        assert_eq!(fs.rename(&ctx, "/top", "/top/sub/evil").unwrap_err(), FsError::Invalid);
    }

    #[test]
    fn hard_links_and_nlink() {
        let (fs, ctx) = small_fs();
        fs.write_file(&ctx, "/orig", b"shared").unwrap();
        fs.link(&ctx, "/orig", "/alias").unwrap();
        let a = fs.stat(&ctx, "/orig").unwrap();
        let b = fs.stat(&ctx, "/alias").unwrap();
        assert_eq!(a.ino, b.ino);
        assert_eq!(a.nlink, 2);
        fs.unlink(&ctx, "/orig").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/alias").unwrap(), b"shared");
        assert_eq!(fs.stat(&ctx, "/alias").unwrap().nlink, 1);
    }

    #[test]
    fn symlinks_follow_and_readlink() {
        let (fs, ctx) = small_fs();
        fs.mkdir(&ctx, "/real", FileMode::dir(0o755)).unwrap();
        fs.write_file(&ctx, "/real/f", b"deep").unwrap();
        fs.symlink(&ctx, "/real", "/lnk").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/lnk/f").unwrap(), b"deep");
        assert_eq!(fs.readlink(&ctx, "/lnk").unwrap(), "/real");
        assert!(fs.stat(&ctx, "/lnk").unwrap().is_dir());
        // Loop detection.
        fs.symlink(&ctx, "/loop2", "/loop1").unwrap();
        fs.symlink(&ctx, "/loop1", "/loop2").unwrap();
        assert_eq!(fs.stat(&ctx, "/loop1").unwrap_err(), FsError::TooManyLinks);
    }

    #[test]
    fn unlinked_open_file_remains_readable_until_close() {
        let (fs, ctx) = small_fs();
        fs.write_file(&ctx, "/ghost", b"boo").unwrap();
        let fd = fs.open(&ctx, "/ghost", OpenFlags::RDONLY, FileMode::default()).unwrap();
        fs.unlink(&ctx, "/ghost").unwrap();
        assert_eq!(fs.stat(&ctx, "/ghost").unwrap_err(), FsError::NotFound);
        let mut buf = [0u8; 3];
        assert_eq!(fs.pread(&ctx, fd, &mut buf, 0).unwrap(), 3);
        assert_eq!(&buf, b"boo");
        fs.close(&ctx, fd).unwrap();
    }

    #[test]
    fn append_mode_appends() {
        let (fs, ctx) = small_fs();
        let fd = fs.open(&ctx, "/log", OpenFlags::APPEND, FileMode::default()).unwrap();
        fs.write(&ctx, fd, b"one,").unwrap();
        fs.write(&ctx, fd, b"two").unwrap();
        fs.close(&ctx, fd).unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/log").unwrap(), b"one,two");
    }

    #[test]
    fn permissions_checked_on_walk_and_open() {
        let (fs, root) = small_fs();
        fs.mkdir(&root, "/secret", FileMode::dir(0o700)).unwrap();
        fs.write_file(&root, "/secret/key", b"k").unwrap();
        fs.write_file(&root, "/open", b"o").unwrap();
        fs.chmod(&root, "/open", 0o600).unwrap();
        let user = ProcCtx::new(9, simurgh_fsapi::Credentials::user(1000, 1000));
        assert_eq!(fs.stat(&user, "/secret/key").unwrap_err(), FsError::Access);
        assert_eq!(
            fs.open(&user, "/open", OpenFlags::RDONLY, FileMode::default()).unwrap_err(),
            FsError::Access
        );
        assert_eq!(fs.chmod(&user, "/open", 0o777).unwrap_err(), FsError::Access);
        assert_eq!(fs.unlink(&user, "/open").unwrap_err(), FsError::Access);
    }

    #[test]
    fn concurrent_shared_directory_creates() {
        let region = Arc::new(PmemRegion::new(64 << 20));
        let fs = Arc::new(SimurghFs::format(region, SimurghConfig::default()).unwrap());
        fs.mkdir(&ProcCtx::root(0), "/shared", FileMode::dir(0o777)).unwrap();
        crossbeam::thread::scope(|s| {
            for t in 0..4u32 {
                let fs = &fs;
                s.spawn(move |_| {
                    let ctx = ProcCtx::root(t + 1);
                    for i in 0..50 {
                        let fd = fs
                            .create(&ctx, &format!("/shared/t{t}-f{i}"), FileMode::default())
                            .unwrap();
                        fs.close(&ctx, fd).unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(fs.readdir(&ProcCtx::root(0), "/shared").unwrap().len(), 200);
    }

    #[test]
    fn ftruncate_and_fallocate() {
        let (fs, ctx) = small_fs();
        let fd = fs.open(&ctx, "/t", OpenFlags::CREATE, FileMode::default()).unwrap();
        fs.fallocate(&ctx, fd, 0, 1 << 20).unwrap();
        assert_eq!(fs.fstat(&ctx, fd).unwrap().size, 1 << 20);
        fs.ftruncate(&ctx, fd, 100).unwrap();
        assert_eq!(fs.fstat(&ctx, fd).unwrap().size, 100);
        fs.close(&ctx, fd).unwrap();
    }

    #[test]
    fn lseek_semantics() {
        let (fs, ctx) = small_fs();
        fs.write_file(&ctx, "/s", b"0123456789").unwrap();
        let fd = fs.open(&ctx, "/s", OpenFlags::RDWR, FileMode::default()).unwrap();
        assert_eq!(fs.lseek(&ctx, fd, SeekFrom::End(-4)).unwrap(), 6);
        let mut buf = [0u8; 4];
        assert_eq!(fs.read(&ctx, fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"6789");
        assert_eq!(fs.lseek(&ctx, fd, SeekFrom::Current(-2)).unwrap(), 8);
        assert_eq!(fs.lseek(&ctx, fd, SeekFrom::Current(-20)).unwrap_err(), FsError::Invalid);
        fs.close(&ctx, fd).unwrap();
    }

    #[test]
    fn set_times_roundtrip() {
        let (fs, ctx) = small_fs();
        fs.write_file(&ctx, "/f", b"").unwrap();
        fs.set_times(&ctx, "/f", 1234, 5678).unwrap();
        let st = fs.stat(&ctx, "/f").unwrap();
        assert_eq!((st.atime, st.mtime), (1234, 5678));
    }

    #[test]
    fn stat_ino_is_persistent_pointer() {
        let (fs, ctx) = small_fs();
        fs.write_file(&ctx, "/p", b"").unwrap();
        let st = fs.stat(&ctx, "/p").unwrap();
        // The inode id is a valid offset into the region pointing at a
        // valid inode object — the paper's "no inode numbers" design.
        let ino = Inode(PPtr::new(st.ino));
        assert_eq!(ino.stat(&fs.region).size, 0);
    }
}
