//! The superblock: format identity, layout table and clean-shutdown flag.
//!
//! Page 0 of the region. Besides the usual magic/epoch/root fields it holds
//! the **pool segment table**: the paper's metadata allocator "saves the
//! layout of the preallocated metadata spaces inside the superblock"
//! (§4.2), so after a crash the mark-and-sweep scan knows exactly where
//! metadata objects live without trusting any volatile state.

use simurgh_pmem::layout::Extent;
use simurgh_pmem::{PPtr, PmemRegion, Pod};

use crate::obj::Tag;

/// "SIMURGH1" in LE bytes.
pub const MAGIC: u64 = 0x3148_4752_554d_4953;
pub const VERSION: u64 = 1;

/// Maximum pool segments per object kind. Segments double in size as a
/// pool grows, so 32 slots cover terabyte-scale pools.
pub const MAX_POOL_SEGS: usize = 32;

const O_MAGIC: u64 = 0;
const O_VERSION: u64 = 8;
const O_CLEAN: u64 = 16;
const O_REGION_LEN: u64 = 24;
const O_ROOT: u64 = 32;
const O_DATA_START: u64 = 40;
const O_DATA_LEN: u64 = 48;
const O_EPOCH: u64 = 56;
const O_POOLS: u64 = 64; // 3 kinds x 32 segs x (start,count) = 1536 bytes; ends at 1600

// Bytes 1600..2048 hold the single-slot relocation journal used by the
// online compactor — see `crate::compact` for the record layout. Bytes
// 2048.. hold the shared-mount coordination words and block-bitmap
// geometry — see `crate::shared` for their semantics.

/// Byte offset of the compactor's relocation journal (one slot; the
/// compactor relocates one file map at a time). Layout and crash
/// semantics live in [`crate::compact`].
pub const O_RELOC: u64 = 1600;

/// In-progress marker for a pool table slot being claimed by
/// [`Superblock::add_pool_seg`] (never a real object count).
const SEG_CLAIM: u64 = u64::MAX;

/// Metadata pool kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    Inode = 0,
    FileEntry = 1,
    DirBlock = 2,
}

impl PoolKind {
    pub const ALL: [PoolKind; 3] = [PoolKind::Inode, PoolKind::FileEntry, PoolKind::DirBlock];

    /// Object size of this pool.
    pub fn obj_size(self) -> u64 {
        match self {
            PoolKind::Inode => crate::obj::inode::INODE_SIZE,
            PoolKind::FileEntry => crate::obj::fentry::FENTRY_SIZE,
            PoolKind::DirBlock => crate::obj::dirblock::DIRBLOCK_SIZE,
        }
    }

    /// Header tag objects of this pool carry.
    pub fn tag(self) -> Tag {
        match self {
            PoolKind::Inode => Tag::Inode,
            PoolKind::FileEntry => Tag::FileEntry,
            PoolKind::DirBlock => Tag::DirBlock,
        }
    }
}

/// One pool segment: `count` objects starting at byte offset `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct PoolSeg {
    pub start: u64,
    pub count: u64,
}

// SAFETY: repr(C) with only u64 fields — no padding, valid for any bit
// pattern. The field order IS the media layout of the superblock's pool
// segment table (O_POOLS), pinned by `layout.golden`.
unsafe impl Pod for PoolSeg {}

/// Typed view over the superblock.
#[derive(Debug, Clone, Copy)]
pub struct Superblock;

impl Superblock {
    /// Formats the superblock fields. The pool table starts empty; segments
    /// are added as [`add_pool_seg`](Self::add_pool_seg) carves them.
    pub fn format(r: &PmemRegion, root_inode: PPtr, data: Extent) {
        r.write(PPtr::new(O_VERSION), VERSION);
        r.write(PPtr::new(O_CLEAN), 0u64);
        r.write(PPtr::new(O_REGION_LEN), r.len() as u64);
        r.write(PPtr::new(O_ROOT), root_inode.off());
        r.write(PPtr::new(O_DATA_START), data.start.off());
        r.write(PPtr::new(O_DATA_LEN), data.len);
        r.write(PPtr::new(O_EPOCH), 1u64);
        r.zero(PPtr::new(O_POOLS), 3 * MAX_POOL_SEGS * 16);
        r.persist(PPtr::new(8), (O_POOLS + 3 * MAX_POOL_SEGS as u64 * 16 - 8) as usize);
        // Magic last: a torn format never looks mountable.
        r.write(PPtr::new(O_MAGIC), MAGIC);
        r.persist(PPtr::new(O_MAGIC), 8);
    }

    /// Whether the region carries a valid Simurgh superblock. Besides the
    /// magic/version identity this checks the recorded region length against
    /// the actual mapping: a mapping *shorter* than the recorded length
    /// means media was truncated behind our back and is rejected. A mapping
    /// *longer* than the recorded length is a grown backing file whose new
    /// capacity has not been adopted yet — still mountable; the next
    /// exclusive mount re-records the geometry ([`record_growth`]
    /// (Self::record_growth)).
    pub fn is_valid(r: &PmemRegion) -> bool {
        if r.len() < simurgh_pmem::PAGE_SIZE
            || r.read::<u64>(PPtr::new(O_MAGIC)) != MAGIC
            || r.read::<u64>(PPtr::new(O_VERSION)) != VERSION
        {
            return false;
        }
        let recorded = r.read::<u64>(PPtr::new(O_REGION_LEN));
        recorded >= simurgh_pmem::PAGE_SIZE as u64 && recorded <= r.len() as u64
    }

    /// Region length recorded at format (or last growth adoption).
    pub fn region_len(r: &PmemRegion) -> u64 {
        r.read(PPtr::new(O_REGION_LEN))
    }

    /// Re-records the geometry after the backing file was grown. The data
    /// extent is persisted before the region length, so a crash mid-adoption
    /// leaves either the old geometry intact or a new data extent that the
    /// next mount's re-run of adoption recomputes identically — adoption is
    /// idempotent and keyed off `r.len() > region_len(r)`.
    pub fn record_growth(r: &PmemRegion, data: Extent) {
        r.write(PPtr::new(O_DATA_START), data.start.off());
        r.write(PPtr::new(O_DATA_LEN), data.len);
        r.persist(PPtr::new(O_DATA_START), 16);
        r.write(PPtr::new(O_REGION_LEN), r.len() as u64);
        r.persist(PPtr::new(O_REGION_LEN), 8);
    }

    pub fn root_inode(r: &PmemRegion) -> PPtr {
        PPtr::new(r.read(PPtr::new(O_ROOT)))
    }

    /// Publishes the root inode pointer (format writes it after allocating
    /// the root from the freshly grown pools).
    pub fn set_root(r: &PmemRegion, root: PPtr) {
        r.write(PPtr::new(O_ROOT), root.off());
        r.persist(PPtr::new(O_ROOT), 8);
    }

    pub fn data_extent(r: &PmemRegion) -> Extent {
        Extent {
            start: PPtr::new(r.read(PPtr::new(O_DATA_START))),
            len: r.read(PPtr::new(O_DATA_LEN)),
        }
    }

    /// Clean-shutdown flag: set at unmount, cleared right after mount so a
    /// crash while mounted is detected next time.
    pub fn is_clean(r: &PmemRegion) -> bool {
        r.read::<u64>(PPtr::new(O_CLEAN)) == 1
    }

    pub fn set_clean(r: &PmemRegion, clean: bool) {
        r.write(PPtr::new(O_CLEAN), clean as u64);
        r.persist(PPtr::new(O_CLEAN), 8);
    }

    pub fn epoch(r: &PmemRegion) -> u64 {
        r.read(PPtr::new(O_EPOCH))
    }

    pub fn bump_epoch(r: &PmemRegion) {
        let e = Self::epoch(r);
        r.write(PPtr::new(O_EPOCH), e + 1);
        r.persist(PPtr::new(O_EPOCH), 8);
    }

    fn seg_addr(kind: PoolKind, idx: usize) -> PPtr {
        PPtr::new(O_POOLS + ((kind as usize * MAX_POOL_SEGS + idx) as u64) * 16)
    }

    /// Reads pool segment `idx` of `kind`, if present. A slot mid-claim by
    /// a concurrent (or crashed) `add_pool_seg` reads as absent, exactly
    /// like a torn record.
    pub fn pool_seg(r: &PmemRegion, kind: PoolKind, idx: usize) -> Option<PoolSeg> {
        if idx >= MAX_POOL_SEGS {
            return None;
        }
        let a = Self::seg_addr(kind, idx);
        let seg = r.read::<PoolSeg>(a);
        if seg.count == 0 || seg.count == SEG_CLAIM {
            return None;
        }
        Some(seg)
    }

    /// All segments of a pool.
    pub fn pool_segs(r: &PmemRegion, kind: PoolKind) -> Vec<PoolSeg> {
        (0..MAX_POOL_SEGS).map_while(|i| Self::pool_seg(r, kind, i)).collect()
    }

    /// Records a new pool segment. The slot is claimed with a CAS on the
    /// count word (0 → [`SEG_CLAIM`]) so two processes growing the same
    /// pool through a shared mapping never write the same slot; start is
    /// then persisted before the real count so a torn record reads as
    /// absent. Returns false if the table is full.
    pub fn add_pool_seg(r: &PmemRegion, kind: PoolKind, seg: PoolSeg) -> bool {
        debug_assert!(seg.count != 0 && seg.count != SEG_CLAIM);
        for i in 0..MAX_POOL_SEGS {
            let a = Self::seg_addr(kind, i);
            let count_word = r.atomic_u64(a.add(8));
            if count_word
                .compare_exchange(
                    0,
                    SEG_CLAIM,
                    std::sync::atomic::Ordering::AcqRel,
                    std::sync::atomic::Ordering::Acquire,
                )
                .is_err()
            {
                continue; // occupied or being claimed by a peer
            }
            r.write(a, seg.start);
            r.persist(a, 8);
            count_word.store(seg.count, std::sync::atomic::Ordering::Release);
            r.note_atomic(a.add(8), 8);
            r.persist(a.add(8), 8);
            return true;
        }
        false
    }

    /// Releases pool table slots whose claimer crashed mid-`add_pool_seg`
    /// (count still [`SEG_CLAIM`]), making them recordable again. Called by
    /// mount-time recovery, which runs exclusively — no live claimers exist.
    pub fn clear_torn_pool_claims(r: &PmemRegion) {
        for kind in PoolKind::ALL {
            for i in 0..MAX_POOL_SEGS {
                let a = Self::seg_addr(kind, i);
                if r.read::<u64>(a.add(8)) == SEG_CLAIM {
                    r.write(a.add(8), 0u64);
                    r.persist(a.add(8), 8);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn formatted() -> PmemRegion {
        let r = PmemRegion::new(1 << 20);
        Superblock::format(
            &r,
            PPtr::new(8192),
            Extent { start: PPtr::new(65536), len: (1 << 20) - 65536 },
        );
        r
    }

    #[test]
    fn format_and_identity() {
        let r = formatted();
        assert!(Superblock::is_valid(&r));
        assert_eq!(Superblock::root_inode(&r), PPtr::new(8192));
        assert_eq!(Superblock::data_extent(&r).start, PPtr::new(65536));
        assert_eq!(Superblock::epoch(&r), 1);
        assert!(!Superblock::is_clean(&r));
    }

    #[test]
    fn blank_region_is_invalid() {
        let r = PmemRegion::new(1 << 16);
        assert!(!Superblock::is_valid(&r));
    }

    #[test]
    fn grown_mapping_stays_valid_truncated_does_not() {
        let r = formatted();
        // A recorded length lagging the mapping is a grown-but-unadopted
        // backing file: still mountable.
        r.write(PPtr::new(O_REGION_LEN), (1u64 << 20) / 2);
        assert!(Superblock::is_valid(&r));
        // A recorded length exceeding the mapping is truncated media: never.
        r.write(PPtr::new(O_REGION_LEN), (1u64 << 20) * 2);
        assert!(!Superblock::is_valid(&r));
    }

    #[test]
    fn record_growth_updates_data_extent_and_region_len() {
        let r = formatted();
        Superblock::record_growth(
            &r,
            Extent { start: PPtr::new(65536), len: (1 << 20) - 65536 - 4096 },
        );
        assert_eq!(Superblock::region_len(&r), 1 << 20);
        assert_eq!(Superblock::data_extent(&r).len, (1 << 20) - 65536 - 4096);
        assert!(Superblock::is_valid(&r));
    }

    #[test]
    fn clean_flag_roundtrip() {
        let r = formatted();
        Superblock::set_clean(&r, true);
        assert!(Superblock::is_clean(&r));
        Superblock::set_clean(&r, false);
        assert!(!Superblock::is_clean(&r));
    }

    #[test]
    fn pool_table_append_and_enumerate() {
        let r = formatted();
        assert!(Superblock::pool_segs(&r, PoolKind::Inode).is_empty());
        assert!(Superblock::add_pool_seg(&r, PoolKind::Inode, PoolSeg { start: 100_000, count: 64 }));
        assert!(Superblock::add_pool_seg(&r, PoolKind::Inode, PoolSeg { start: 200_000, count: 32 }));
        assert!(Superblock::add_pool_seg(&r, PoolKind::DirBlock, PoolSeg { start: 300_000, count: 8 }));
        let segs = Superblock::pool_segs(&r, PoolKind::Inode);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1], PoolSeg { start: 200_000, count: 32 });
        assert_eq!(Superblock::pool_segs(&r, PoolKind::DirBlock).len(), 1);
        assert!(Superblock::pool_segs(&r, PoolKind::FileEntry).is_empty());
    }

    #[test]
    fn pool_table_capacity() {
        let r = formatted();
        for i in 0..MAX_POOL_SEGS {
            assert!(Superblock::add_pool_seg(
                &r,
                PoolKind::FileEntry,
                PoolSeg { start: (i as u64 + 1) * 1000, count: 1 }
            ));
        }
        assert!(!Superblock::add_pool_seg(&r, PoolKind::FileEntry, PoolSeg { start: 1, count: 1 }));
        assert_eq!(Superblock::pool_segs(&r, PoolKind::FileEntry).len(), MAX_POOL_SEGS);
    }

    #[test]
    fn epoch_bumps() {
        let r = formatted();
        Superblock::bump_epoch(&r);
        Superblock::bump_epoch(&r);
        assert_eq!(Superblock::epoch(&r), 3);
    }

    #[test]
    fn pool_kind_properties() {
        assert_eq!(PoolKind::Inode.obj_size(), 128);
        assert_eq!(PoolKind::FileEntry.obj_size(), 256);
        assert_eq!(PoolKind::DirBlock.obj_size(), 4096);
        assert_eq!(PoolKind::Inode.tag(), Tag::Inode);
        assert_eq!(PoolKind::FileEntry.tag(), Tag::FileEntry);
        assert_eq!(PoolKind::DirBlock.tag(), Tag::DirBlock);
    }
}
