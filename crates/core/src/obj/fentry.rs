//! File-entry layout.
//!
//! File entries are the values of the directory hash maps: they carry the
//! name, a type/link flag word and the persistent pointer to the inode
//! (§4.3 "Directory blocks", "Symbolic links"). They are fixed-size pool
//! objects so that allocation is a single lock-free claim.

use simurgh_fsapi::types::FileType;
use simurgh_pmem::{PPtr, PmemRegion};

/// Size of one file-entry object.
pub const FENTRY_SIZE: u64 = 256;

/// Maximum name bytes stored inline (≥ `simurgh_fsapi::NAME_MAX`).
pub const NAME_CAP: usize = 232;

const O_INODE: u64 = 8;
const O_FLAGS: u64 = 16;
const O_NAMELEN: u64 = 20;
const O_NAME: u64 = 24;

/// Flag bit: this entry is a symbolic link (paper's "link flag" — the
/// inode it points to stores only the destination path).
const F_SYMLINK: u32 = 1;
const F_TYPE_SHIFT: u32 = 8;

/// Typed view over a file-entry object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileEntry(pub PPtr);

impl FileEntry {
    #[inline]
    pub fn ptr(self) -> PPtr {
        self.0
    }

    /// Writes name, type and inode pointer (create path). Caller persists
    /// the object and links it into a hash line afterwards.
    pub fn init(self, r: &PmemRegion, name: &str, ftype: FileType, inode: PPtr) {
        debug_assert!(name.len() <= NAME_CAP);
        r.write(self.0.add(O_INODE), inode.off());
        let t: u32 = match ftype {
            FileType::Regular => 0,
            FileType::Directory => 1,
            FileType::Symlink => 2,
        };
        let mut flags = t << F_TYPE_SHIFT;
        if ftype == FileType::Symlink {
            flags |= F_SYMLINK;
        }
        r.write(self.0.add(O_FLAGS), flags);
        r.write(self.0.add(O_NAMELEN), name.len() as u32);
        r.write_from(self.0.add(O_NAME), name.as_bytes());
    }

    pub fn inode(self, r: &PmemRegion) -> PPtr {
        PPtr::new(r.read(self.0.add(O_INODE)))
    }

    pub fn set_inode(self, r: &PmemRegion, inode: PPtr) {
        r.write(self.0.add(O_INODE), inode.off());
        r.persist(self.0.add(O_INODE), 8);
    }

    pub fn ftype(self, r: &PmemRegion) -> FileType {
        let flags: u32 = r.read(self.0.add(O_FLAGS));
        match (flags >> F_TYPE_SHIFT) & 0xff {
            1 => FileType::Directory,
            2 => FileType::Symlink,
            _ => FileType::Regular,
        }
    }

    pub fn is_symlink(self, r: &PmemRegion) -> bool {
        let flags: u32 = r.read(self.0.add(O_FLAGS));
        flags & F_SYMLINK != 0
    }

    pub fn name_len(self, r: &PmemRegion) -> usize {
        (r.read::<u32>(self.0.add(O_NAMELEN)) as usize).min(NAME_CAP)
    }

    /// Reads the entry name.
    pub fn name(self, r: &PmemRegion) -> String {
        let len = self.name_len(r);
        let mut buf = vec![0u8; len];
        r.read_into(self.0.add(O_NAME), &mut buf);
        String::from_utf8_lossy(&buf).into_owned()
    }

    /// Compares the stored name against `name` without allocating.
    pub fn name_eq(self, r: &PmemRegion, name: &str) -> bool {
        if self.name_len(r) != name.len() {
            return false;
        }
        let mut buf = [0u8; NAME_CAP];
        let len = name.len();
        r.read_into(self.0.add(O_NAME), &mut buf[..len]);
        &buf[..len] == name.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_read_back() {
        let r = PmemRegion::new(8192);
        let fe = FileEntry(PPtr::new(1024));
        fe.init(&r, "report.txt", FileType::Regular, PPtr::new(4096));
        assert_eq!(fe.inode(&r), PPtr::new(4096));
        assert_eq!(fe.ftype(&r), FileType::Regular);
        assert!(!fe.is_symlink(&r));
        assert_eq!(fe.name(&r), "report.txt");
        assert!(fe.name_eq(&r, "report.txt"));
        assert!(!fe.name_eq(&r, "report.txT"));
        assert!(!fe.name_eq(&r, "report.txt2"));
    }

    #[test]
    fn symlink_flag() {
        let r = PmemRegion::new(8192);
        let fe = FileEntry(PPtr::new(1024));
        fe.init(&r, "ln", FileType::Symlink, PPtr::new(2048));
        assert!(fe.is_symlink(&r));
        assert_eq!(fe.ftype(&r), FileType::Symlink);
    }

    #[test]
    fn directory_type() {
        let r = PmemRegion::new(8192);
        let fe = FileEntry(PPtr::new(1024));
        fe.init(&r, "subdir", FileType::Directory, PPtr::new(2048));
        assert_eq!(fe.ftype(&r), FileType::Directory);
        assert!(!fe.is_symlink(&r));
    }

    #[test]
    fn inode_retarget() {
        // The intra-directory rename protocol points a shadow entry at the
        // same inode (Fig. 5c step 2).
        let r = PmemRegion::new(8192);
        let fe = FileEntry(PPtr::new(1024));
        fe.init(&r, "x", FileType::Regular, PPtr::new(4096));
        fe.set_inode(&r, PPtr::new(6144));
        assert_eq!(fe.inode(&r), PPtr::new(6144));
    }

    #[test]
    fn max_length_name() {
        let r = PmemRegion::new(8192);
        let fe = FileEntry(PPtr::new(1024));
        let name = "n".repeat(simurgh_fsapi::NAME_MAX);
        fe.init(&r, &name, FileType::Regular, PPtr::new(4096));
        assert_eq!(fe.name(&r), name);
        assert!(fe.name_eq(&r, &name));
    }
}
