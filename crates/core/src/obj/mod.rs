//! Persistent metadata object layouts.
//!
//! Simurgh keeps three kinds of fixed-size metadata objects in NVMM pools
//! (§4.2 "Data structure allocator"): inodes, file entries and directory
//! hash blocks. Every object starts with an 8-byte header word containing
//! the **valid** and **dirty** flags the allocator and the crash-recovery
//! protocols revolve around:
//!
//! * free object: `valid = 0, dirty = 0` (entire object zeroed),
//! * just allocated / operation in flight: `valid = 1, dirty = 1`,
//! * live and consistent: `valid = 1, dirty = 0`,
//! * deallocation in flight: `valid = 0, dirty = 1`.
//!
//! The header also carries a type tag so the mark-and-sweep recovery can
//! sanity-check every pointer it follows.

pub mod dirblock;
pub mod fentry;
pub mod inode;

use simurgh_pmem::{PPtr, PmemRegion};
use std::sync::atomic::Ordering;

/// Header bit: the object is live.
pub const H_VALID: u64 = 1 << 0;
/// Header bit: an operation on the object has not completed.
pub const H_DIRTY: u64 = 1 << 1;

/// Object type tags (header bits 8..16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Tag {
    Inode = 1,
    FileEntry = 2,
    DirBlock = 3,
}

impl Tag {
    pub fn from_header(h: u64) -> Option<Tag> {
        match (h >> 8) & 0xff {
            1 => Some(Tag::Inode),
            2 => Some(Tag::FileEntry),
            3 => Some(Tag::DirBlock),
            _ => None,
        }
    }

    pub fn bits(self) -> u64 {
        (self as u64) << 8
    }
}

/// Reads an object header.
#[inline]
pub fn header(region: &PmemRegion, obj: PPtr) -> u64 {
    region.atomic_u64(obj).load(Ordering::Acquire)
}

/// Whether the header marks a live object.
#[inline]
pub fn is_valid(h: u64) -> bool {
    h & H_VALID != 0
}

/// Whether the header marks an in-flight operation.
#[inline]
pub fn is_dirty(h: u64) -> bool {
    h & H_DIRTY != 0
}

/// Clears the dirty bit and persists the header — the final step of the
/// create/rename protocols ("the dirty bits for the newly created data
/// structures are unset", Fig. 5a step 6).
///
/// Commit point: eagerly fenced even inside a [`FenceScope`](simurgh_pmem::FenceScope), because a
/// dirty-bit flip changes which recovery action a crash maps to.
pub fn clear_dirty(region: &PmemRegion, obj: PPtr) {
    region.atomic_u64(obj).fetch_and(!H_DIRTY, Ordering::AcqRel);
    region.note_atomic(obj, 8);
    region.persist_now(obj, 8);
}

/// Sets the dirty bit and persists the header (marks an operation on a live
/// object as in flight, e.g. the file entry being removed in Fig. 5b).
///
/// Commit point: eagerly fenced even inside a [`FenceScope`](simurgh_pmem::FenceScope).
pub fn set_dirty(region: &PmemRegion, obj: PPtr) {
    region.atomic_u64(obj).fetch_or(H_DIRTY, Ordering::AcqRel);
    region.note_atomic(obj, 8);
    region.persist_now(obj, 8);
}

/// Clears the valid bit (keeping dirty set) and persists — the first step
/// of deallocation (Fig. 5b step 2).
///
/// Commit point: eagerly fenced even inside a [`FenceScope`](simurgh_pmem::FenceScope).
pub fn invalidate(region: &PmemRegion, obj: PPtr) {
    let a = region.atomic_u64(obj);
    let mut h = a.load(Ordering::Acquire);
    loop {
        let new = (h & !H_VALID) | H_DIRTY;
        match a.compare_exchange_weak(h, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => break,
            Err(cur) => h = cur,
        }
    }
    region.note_atomic(obj, 8);
    region.persist_now(obj, 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for t in [Tag::Inode, Tag::FileEntry, Tag::DirBlock] {
            assert_eq!(Tag::from_header(t.bits() | H_VALID | H_DIRTY), Some(t));
        }
        assert_eq!(Tag::from_header(0), None);
        assert_eq!(Tag::from_header(0xff << 8), None);
    }

    #[test]
    fn header_bit_lifecycle() {
        let r = PmemRegion::new(4096);
        let p = PPtr::new(64);
        // Allocation: valid + dirty + tag.
        r.atomic_u64(p).store(H_VALID | H_DIRTY | Tag::Inode.bits(), Ordering::Release);
        let h = header(&r, p);
        assert!(is_valid(h) && is_dirty(h));
        clear_dirty(&r, p);
        let h = header(&r, p);
        assert!(is_valid(h) && !is_dirty(h));
        set_dirty(&r, p);
        assert!(is_dirty(header(&r, p)));
        invalidate(&r, p);
        let h = header(&r, p);
        assert!(!is_valid(h) && is_dirty(h));
        assert_eq!(Tag::from_header(h), Some(Tag::Inode), "tag survives state changes");
    }
}
