//! Inode layout.
//!
//! Simurgh inodes have no inode *number*: the 64-bit persistent pointer to
//! the inode is its unique identifier (§4.3 "Inode"), which removes the
//! number→location index kernel file systems need. The inode embeds three
//! inline extents and chains overflow extents through 4-KB extent blocks;
//! it also embeds the per-file reader/writer lock word (§4.3 "Data
//! operations"), which is logically volatile and reset at mount.

use simurgh_fsapi::types::{FileMode, FileType};
use simurgh_pmem::{PPtr, PmemRegion, Pod};

/// Size of one inode object.
pub const INODE_SIZE: u64 = 128;

/// Number of extents stored inline in the inode.
pub const INLINE_EXTENTS: usize = 3;

// Field offsets.
const O_MODE: u64 = 8;
const O_UID: u64 = 12;
const O_GID: u64 = 16;
const O_NLINK: u64 = 20;
const O_SIZE: u64 = 24;
const O_ATIME: u64 = 32;
const O_MTIME: u64 = 40;
const O_CTIME: u64 = 48;
/// Per-file rwlock word (volatile-in-NVMM; cleared on mount).
pub const O_LOCK: u64 = 56;
const O_EXTENTS: u64 = 72;
const O_EXT_NEXT: u64 = 120;

/// One extent: a contiguous run of file bytes in the data area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
pub struct Extent {
    /// Byte offset of the run in the region (block aligned), or 0 if unset.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
}

// SAFETY: repr(C) with only u64 fields — no padding, valid for any bit
// pattern. The field order IS the media layout of the inline extent table
// (O_EXTENTS) and of extent blocks, pinned by `layout.golden`.
unsafe impl Pod for Extent {}

impl Extent {
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Typed view over an inode object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inode(pub PPtr);

impl Inode {
    #[inline]
    pub fn ptr(self) -> PPtr {
        self.0
    }

    /// Writes the full initial field set (create path). Caller persists.
    #[allow(clippy::too_many_arguments)]
    pub fn init(
        self,
        r: &PmemRegion,
        mode: FileMode,
        uid: u32,
        gid: u32,
        nlink: u32,
        now: u64,
    ) {
        self.set_mode(r, mode);
        r.write(self.0.add(O_UID), uid);
        r.write(self.0.add(O_GID), gid);
        r.write(self.0.add(O_NLINK), nlink);
        r.write(self.0.add(O_SIZE), 0u64);
        r.write(self.0.add(O_ATIME), now);
        r.write(self.0.add(O_MTIME), now);
        r.write(self.0.add(O_CTIME), now);
        r.write(self.0.add(O_LOCK), 0u64);
        for i in 0..INLINE_EXTENTS {
            self.set_extent(r, i, Extent::default());
        }
        r.write(self.0.add(O_EXT_NEXT), 0u64);
    }

    pub fn mode(self, r: &PmemRegion) -> FileMode {
        let raw: u32 = r.read(self.0.add(O_MODE));
        let ftype = match raw >> 16 {
            1 => FileType::Directory,
            2 => FileType::Symlink,
            _ => FileType::Regular,
        };
        FileMode { ftype, perm: (raw & 0o777) as u16 }
    }

    pub fn set_mode(self, r: &PmemRegion, mode: FileMode) {
        let t: u32 = match mode.ftype {
            FileType::Regular => 0,
            FileType::Directory => 1,
            FileType::Symlink => 2,
        };
        r.write(self.0.add(O_MODE), (t << 16) | (mode.perm as u32 & 0o777));
    }

    pub fn uid(self, r: &PmemRegion) -> u32 {
        r.read(self.0.add(O_UID))
    }

    pub fn gid(self, r: &PmemRegion) -> u32 {
        r.read(self.0.add(O_GID))
    }

    pub fn nlink(self, r: &PmemRegion) -> u32 {
        r.read(self.0.add(O_NLINK))
    }

    pub fn set_nlink(self, r: &PmemRegion, n: u32) {
        r.write(self.0.add(O_NLINK), n);
        r.persist(self.0.add(O_NLINK), 4);
    }

    pub fn size(self, r: &PmemRegion) -> u64 {
        r.read(self.0.add(O_SIZE))
    }

    /// Sets the size field; the caller orders this after the data persist
    /// ("metadata updates occur after the data has been persisted").
    pub fn set_size(self, r: &PmemRegion, size: u64) {
        r.write(self.0.add(O_SIZE), size);
        r.persist(self.0.add(O_SIZE), 8);
    }

    pub fn times(self, r: &PmemRegion) -> (u64, u64, u64) {
        (r.read(self.0.add(O_ATIME)), r.read(self.0.add(O_MTIME)), r.read(self.0.add(O_CTIME)))
    }

    pub fn set_atime(self, r: &PmemRegion, t: u64) {
        r.write(self.0.add(O_ATIME), t);
    }

    pub fn set_mtime(self, r: &PmemRegion, t: u64) {
        r.write(self.0.add(O_MTIME), t);
    }

    pub fn set_ctime(self, r: &PmemRegion, t: u64) {
        r.write(self.0.add(O_CTIME), t);
    }

    pub fn extent(self, r: &PmemRegion, i: usize) -> Extent {
        debug_assert!(i < INLINE_EXTENTS);
        let base = self.0.add(O_EXTENTS + (i as u64) * 16);
        r.read::<Extent>(base)
    }

    pub fn set_extent(self, r: &PmemRegion, i: usize, e: Extent) {
        debug_assert!(i < INLINE_EXTENTS);
        let base = self.0.add(O_EXTENTS + (i as u64) * 16);
        r.write(base, e.start);
        r.write(base.add(8), e.len);
        r.persist(base, 16);
    }

    /// Pointer to the first overflow extent block (or NULL).
    pub fn ext_next(self, r: &PmemRegion) -> PPtr {
        PPtr::new(r.read(self.0.add(O_EXT_NEXT)))
    }

    pub fn set_ext_next(self, r: &PmemRegion, p: PPtr) {
        r.write(self.0.add(O_EXT_NEXT), p.off());
        r.persist(self.0.add(O_EXT_NEXT), 8);
    }

    /// The per-file rwlock word address (used by `file::FileLock`).
    pub fn lock_ptr(self) -> PPtr {
        self.0.add(O_LOCK)
    }

    pub fn stat(self, r: &PmemRegion) -> simurgh_fsapi::Stat {
        let (atime, mtime, ctime) = self.times(r);
        simurgh_fsapi::Stat {
            ino: self.0.off(),
            mode: self.mode(r),
            uid: self.uid(r),
            gid: self.gid(r),
            size: self.size(r),
            nlink: self.nlink(r),
            atime,
            mtime,
            ctime,
        }
    }
}

/// Overflow extent block layout (one 4-KB data block).
pub mod extblock {
    use super::Extent;
    use simurgh_pmem::{PPtr, PmemRegion};

    const O_NEXT: u64 = 0;
    const O_COUNT: u64 = 8;
    const O_ENTRIES: u64 = 16;
    /// Extents per overflow block.
    pub const CAPACITY: usize = (crate::BLOCK_SIZE - 16) / 16;

    pub fn init(r: &PmemRegion, blk: PPtr) {
        r.zero(blk, crate::BLOCK_SIZE);
        r.persist(blk, crate::BLOCK_SIZE);
    }

    pub fn next(r: &PmemRegion, blk: PPtr) -> PPtr {
        PPtr::new(r.read(blk.add(O_NEXT)))
    }

    pub fn set_next(r: &PmemRegion, blk: PPtr, p: PPtr) {
        r.write(blk.add(O_NEXT), p.off());
        r.persist(blk.add(O_NEXT), 8);
    }

    pub fn count(r: &PmemRegion, blk: PPtr) -> usize {
        r.read::<u64>(blk.add(O_COUNT)) as usize
    }

    pub fn get(r: &PmemRegion, blk: PPtr, i: usize) -> Extent {
        debug_assert!(i < CAPACITY);
        let base = blk.add(O_ENTRIES + (i as u64) * 16);
        Extent { start: r.read(base), len: r.read(base.add(8)) }
    }

    /// Appends an extent; persists entry before count so a crash never
    /// exposes an uninitialized entry.
    pub fn push(r: &PmemRegion, blk: PPtr, e: Extent) -> bool {
        let c = count(r, blk);
        if c >= CAPACITY {
            return false;
        }
        let base = blk.add(O_ENTRIES + (c as u64) * 16);
        r.write(base, e.start);
        r.write(base.add(8), e.len);
        r.persist(base, 16);
        r.write(blk.add(O_COUNT), (c + 1) as u64);
        r.persist(blk.add(O_COUNT), 8);
        true
    }

    /// Rewrites the length of extent `i` (used when growing the tail).
    pub fn set_len(r: &PmemRegion, blk: PPtr, i: usize, len: u64) {
        let base = blk.add(O_ENTRIES + (i as u64) * 16 + 8);
        r.write(base, len);
        r.persist(base, 8);
    }

    /// Replaces the whole block in place: entries are persisted before the
    /// count so a crash mid-rewrite never exposes stale slots beyond the
    /// new count. Used by truncate, which only ever shrinks the map.
    pub fn rewrite(r: &PmemRegion, blk: PPtr, entries: &[Extent], next_blk: PPtr) {
        assert!(entries.len() <= CAPACITY);
        for (i, e) in entries.iter().enumerate() {
            let base = blk.add(O_ENTRIES + (i as u64) * 16);
            r.write(base, e.start);
            r.write(base.add(8), e.len);
        }
        if !entries.is_empty() {
            r.persist(blk.add(O_ENTRIES), entries.len() * 16);
        }
        r.write(blk.add(O_COUNT), entries.len() as u64);
        r.write(blk.add(O_NEXT), next_blk.off());
        r.persist(blk, 16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> PmemRegion {
        PmemRegion::new(64 * 1024)
    }

    #[test]
    fn init_and_field_roundtrip() {
        let r = region();
        let ino = Inode(PPtr::new(4096));
        ino.init(&r, FileMode::dir(0o750), 10, 20, 2, 99);
        assert_eq!(ino.mode(&r), FileMode::dir(0o750));
        assert_eq!(ino.uid(&r), 10);
        assert_eq!(ino.gid(&r), 20);
        assert_eq!(ino.nlink(&r), 2);
        assert_eq!(ino.size(&r), 0);
        assert_eq!(ino.times(&r), (99, 99, 99));
        assert!(ino.extent(&r, 0).is_empty());
        assert!(ino.ext_next(&r).is_null());
    }

    #[test]
    fn mode_encodings() {
        let r = region();
        let ino = Inode(PPtr::new(4096));
        for m in [FileMode::file(0o644), FileMode::dir(0o700), FileMode::symlink()] {
            ino.set_mode(&r, m);
            assert_eq!(ino.mode(&r), m);
        }
    }

    #[test]
    fn extents_roundtrip() {
        let r = region();
        let ino = Inode(PPtr::new(4096));
        ino.init(&r, FileMode::file(0o644), 0, 0, 1, 0);
        ino.set_extent(&r, 1, Extent { start: 8192, len: 12288 });
        assert_eq!(ino.extent(&r, 1), Extent { start: 8192, len: 12288 });
        assert!(ino.extent(&r, 0).is_empty());
    }

    #[test]
    fn stat_mirrors_fields() {
        let r = region();
        let ino = Inode(PPtr::new(4096));
        ino.init(&r, FileMode::file(0o600), 7, 8, 1, 5);
        ino.set_size(&r, 1234);
        let st = ino.stat(&r);
        assert_eq!(st.ino, 4096);
        assert_eq!(st.size, 1234);
        assert_eq!((st.uid, st.gid, st.nlink), (7, 8, 1));
        assert!(st.is_file());
    }

    #[test]
    fn extent_block_push_and_walk() {
        let r = region();
        let blk = PPtr::new(8192);
        extblock::init(&r, blk);
        assert_eq!(extblock::count(&r, blk), 0);
        for i in 0..10 {
            assert!(extblock::push(&r, blk, Extent { start: (i + 4) * 4096, len: 4096 }));
        }
        assert_eq!(extblock::count(&r, blk), 10);
        assert_eq!(extblock::get(&r, blk, 3).start, 7 * 4096);
        extblock::set_len(&r, blk, 9, 8192);
        assert_eq!(extblock::get(&r, blk, 9).len, 8192);
        assert!(extblock::next(&r, blk).is_null());
        extblock::set_next(&r, blk, PPtr::new(12288));
        assert_eq!(extblock::next(&r, blk), PPtr::new(12288));
    }

    #[test]
    fn extent_block_capacity_bound() {
        let r = PmemRegion::new(2 << 20);
        let blk = PPtr::new(8192);
        extblock::init(&r, blk);
        for i in 0..extblock::CAPACITY {
            assert!(extblock::push(&r, blk, Extent { start: (i as u64 + 10) * 4096, len: 1 }));
        }
        assert!(!extblock::push(&r, blk, Extent { start: 4096, len: 1 }), "block full");
        assert_eq!(extblock::count(&r, blk), extblock::CAPACITY);
    }
}
