//! Directory hash-block layout.
//!
//! A directory is a chain of 4-KB hash blocks (§4.3 "Directory blocks").
//! Each block is a linear hash map with [`NLINES`] lines; a line holds one
//! persistent pointer per block, so collisions extend the chain through the
//! `next` field. Only the **first** block of a directory carries the
//! per-line busy flags and the single log entry used by cross-directory
//! renames — exactly as described in the paper.

use std::sync::atomic::Ordering;

use simurgh_pmem::{PPtr, PmemRegion, Pod};

/// Size of one directory hash block.
pub const DIRBLOCK_SIZE: u64 = 4096;

/// Hash lines per directory.
pub const NLINES: usize = 256;

const O_NEXT: u64 = 8;
const O_FLAGS: u64 = 16;
const O_LOG: u64 = 24;
const O_BUSY: u64 = 128;
const O_LINES: u64 = 384;

/// Block flag: this is the first block of its directory.
pub const DF_FIRST: u64 = 1 << 0;
/// Block flag: a rename touching this directory is in flight (the paper's
/// "dirty directory bit", Fig. 5c).
pub const DF_RENAME: u64 = 1 << 1;

/// Typed view over one directory hash block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirBlock(pub PPtr);

/// The per-directory log entry (stored in the first block). One entry is
/// enough because the busy flags serialize rename operations per directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
pub struct RenameLog {
    /// 0 = idle, 1 = cross-directory rename (this dir is the source).
    pub op: u64,
    pub src_dir: u64,
    pub dst_dir: u64,
    pub inode: u64,
    pub old_fentry: u64,
    pub new_fentry: u64,
    pub old_line: u64,
    pub new_line: u64,
}

// SAFETY: repr(C) with only u64 fields — no padding, valid for any bit
// pattern. The field order IS the media layout at O_LOG, pinned by
// `layout.golden` and the offset test in tests/tests/static_analysis.rs.
unsafe impl Pod for RenameLog {}

/// Log operation codes.
pub mod logop {
    pub const IDLE: u64 = 0;
    pub const CROSS_RENAME: u64 = 1;
}

impl DirBlock {
    #[inline]
    pub fn ptr(self) -> PPtr {
        self.0
    }

    /// Zero-initializes the block body and writes its flags. The caller
    /// sets the header via the metadata allocator.
    pub fn init(self, r: &PmemRegion, first: bool) {
        r.zero(self.0.add(8), (DIRBLOCK_SIZE - 8) as usize);
        if first {
            r.write(self.0.add(O_FLAGS), DF_FIRST);
        }
        r.persist(self.0.add(8), (DIRBLOCK_SIZE - 8) as usize);
    }

    pub fn next(self, r: &PmemRegion) -> PPtr {
        PPtr::new(r.atomic_u64(self.0.add(O_NEXT)).load(Ordering::Acquire))
    }

    /// Publishes the next block in the chain (Fig. 5a step 4: the new hash
    /// block is linked to the previous one).
    pub fn set_next(self, r: &PmemRegion, p: PPtr) {
        r.atomic_u64(self.0.add(O_NEXT)).store(p.off(), Ordering::Release);
        r.note_atomic(self.0.add(O_NEXT), 8);
        r.persist_now(self.0.add(O_NEXT), 8);
    }

    /// Links `p` after this block only if no other writer extended the chain
    /// first. Writers on *different* lines hold different busy flags, so two
    /// of them can reach the same chain tail concurrently; a plain store
    /// would let the second overwrite the first's link and lose its block.
    pub fn try_set_next(self, r: &PmemRegion, p: PPtr) -> bool {
        let won = r
            .atomic_u64(self.0.add(O_NEXT))
            .compare_exchange(0, p.off(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            r.note_atomic(self.0.add(O_NEXT), 8);
            r.persist_now(self.0.add(O_NEXT), 8);
        }
        won
    }

    pub fn flags(self, r: &PmemRegion) -> u64 {
        r.atomic_u64(self.0.add(O_FLAGS)).load(Ordering::Acquire)
    }

    pub fn set_flag(self, r: &PmemRegion, flag: u64) {
        r.atomic_u64(self.0.add(O_FLAGS)).fetch_or(flag, Ordering::AcqRel);
        r.note_atomic(self.0.add(O_FLAGS), 8);
        r.persist_now(self.0.add(O_FLAGS), 8);
    }

    pub fn clear_flag(self, r: &PmemRegion, flag: u64) {
        r.atomic_u64(self.0.add(O_FLAGS)).fetch_and(!flag, Ordering::AcqRel);
        r.note_atomic(self.0.add(O_FLAGS), 8);
        r.persist_now(self.0.add(O_FLAGS), 8);
    }

    pub fn is_first(self, r: &PmemRegion) -> bool {
        self.flags(r) & DF_FIRST != 0
    }

    // ----- lines ------------------------------------------------------------

    /// Reads the file-entry pointer of `line` in this block.
    #[inline]
    pub fn line(self, r: &PmemRegion, line: usize) -> PPtr {
        debug_assert!(line < NLINES);
        PPtr::new(r.atomic_u64(self.0.add(O_LINES + (line as u64) * 8)).load(Ordering::Acquire))
    }

    /// Atomically publishes (or clears, with NULL) the file-entry pointer
    /// of `line` and persists it — the single-pointer update every Fig. 5
    /// protocol step hinges on.
    #[inline]
    pub fn set_line(self, r: &PmemRegion, line: usize, p: PPtr) {
        debug_assert!(line < NLINES);
        let addr = self.0.add(O_LINES + (line as u64) * 8);
        r.atomic_u64(addr).store(p.off(), Ordering::Release);
        r.note_atomic(addr, 8);
        r.persist_now(addr, 8);
    }

    // ----- busy flags (first block only) -------------------------------------

    /// Tries to acquire the busy flag of `line`. Returns false if held.
    #[inline]
    pub fn try_busy(self, r: &PmemRegion, line: usize) -> bool {
        debug_assert!(line < NLINES);
        r.atomic_u8(self.0.add(O_BUSY + line as u64))
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Releases the busy flag of `line`.
    #[inline]
    pub fn release_busy(self, r: &PmemRegion, line: usize) {
        debug_assert!(line < NLINES);
        r.atomic_u8(self.0.add(O_BUSY + line as u64)).store(0, Ordering::Release);
    }

    /// Whether `line` is currently busy.
    #[inline]
    pub fn is_busy(self, r: &PmemRegion, line: usize) -> bool {
        r.atomic_u8(self.0.add(O_BUSY + line as u64)).load(Ordering::Acquire) != 0
    }

    /// Force-clears every busy flag (mount-time recovery: busy flags are
    /// meaningless after a whole-system crash).
    pub fn clear_all_busy(self, r: &PmemRegion) {
        for l in 0..NLINES {
            r.atomic_u8(self.0.add(O_BUSY + l as u64)).store(0, Ordering::Release);
        }
    }

    // ----- rename log (first block only) --------------------------------------

    pub fn read_log(self, r: &PmemRegion) -> RenameLog {
        r.read::<RenameLog>(self.0.add(O_LOG))
    }

    /// Writes and persists the log entry; the `op` field is persisted last
    /// so a torn log write never reads as an armed log.
    pub fn write_log(self, r: &PmemRegion, log: &RenameLog) {
        let b = self.0.add(O_LOG);
        r.write(b.add(8), log.src_dir);
        r.write(b.add(16), log.dst_dir);
        r.write(b.add(24), log.inode);
        r.write(b.add(32), log.old_fentry);
        r.write(b.add(40), log.new_fentry);
        r.write(b.add(48), log.old_line);
        r.write(b.add(56), log.new_line);
        r.persist_now(b.add(8), 56);
        r.write(b, log.op);
        r.persist_now(b, 8);
    }

    /// Disarms the log (operation completed).
    pub fn clear_log(self, r: &PmemRegion) {
        r.write(self.0.add(O_LOG), logop::IDLE);
        r.persist_now(self.0.add(O_LOG), 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> PmemRegion {
        PmemRegion::new(64 * 1024)
    }

    #[test]
    fn layout_fits_one_block() {
        let (lines, busy, log) = (O_LINES, O_BUSY, O_LOG);
        assert!(lines + (NLINES as u64) * 8 <= DIRBLOCK_SIZE);
        assert!(busy + NLINES as u64 <= lines);
        assert!(log + 64 <= busy);
    }

    #[test]
    fn init_sets_first_flag_only_on_first() {
        let r = region();
        let a = DirBlock(PPtr::new(4096));
        let b = DirBlock(PPtr::new(8192));
        a.init(&r, true);
        b.init(&r, false);
        assert!(a.is_first(&r));
        assert!(!b.is_first(&r));
        for l in [0, 100, NLINES - 1] {
            assert!(a.line(&r, l).is_null());
        }
    }

    #[test]
    fn lines_roundtrip() {
        let r = region();
        let b = DirBlock(PPtr::new(4096));
        b.init(&r, true);
        b.set_line(&r, 7, PPtr::new(0xbeef0));
        assert_eq!(b.line(&r, 7), PPtr::new(0xbeef0));
        b.set_line(&r, 7, PPtr::NULL);
        assert!(b.line(&r, 7).is_null());
    }

    #[test]
    fn chain_linking() {
        let r = region();
        let a = DirBlock(PPtr::new(4096));
        let b = DirBlock(PPtr::new(8192));
        a.init(&r, true);
        b.init(&r, false);
        assert!(a.next(&r).is_null());
        a.set_next(&r, b.ptr());
        assert_eq!(a.next(&r), b.ptr());
    }

    #[test]
    fn try_set_next_loses_to_existing_link() {
        let r = region();
        let a = DirBlock(PPtr::new(4096));
        let b = DirBlock(PPtr::new(8192));
        let c = DirBlock(PPtr::new(12288));
        a.init(&r, true);
        b.init(&r, false);
        c.init(&r, false);
        assert!(a.try_set_next(&r, b.ptr()));
        assert!(!a.try_set_next(&r, c.ptr()), "second extender must lose");
        assert_eq!(a.next(&r), b.ptr(), "winner's link survives");
    }

    #[test]
    fn busy_flags_are_per_line() {
        let r = region();
        let b = DirBlock(PPtr::new(4096));
        b.init(&r, true);
        assert!(b.try_busy(&r, 3));
        assert!(!b.try_busy(&r, 3), "second acquire fails");
        assert!(b.try_busy(&r, 4), "other lines unaffected");
        assert!(b.is_busy(&r, 3));
        b.release_busy(&r, 3);
        assert!(!b.is_busy(&r, 3));
        assert!(b.try_busy(&r, 3));
        b.clear_all_busy(&r);
        assert!(!b.is_busy(&r, 3) && !b.is_busy(&r, 4));
    }

    #[test]
    fn rename_log_roundtrip() {
        let r = region();
        let b = DirBlock(PPtr::new(4096));
        b.init(&r, true);
        assert_eq!(b.read_log(&r).op, logop::IDLE);
        let log = RenameLog {
            op: logop::CROSS_RENAME,
            src_dir: 4096,
            dst_dir: 8192,
            inode: 111,
            old_fentry: 222,
            new_fentry: 333,
            old_line: 7,
            new_line: 9,
        };
        b.write_log(&r, &log);
        assert_eq!(b.read_log(&r), log);
        b.clear_log(&r);
        assert_eq!(b.read_log(&r).op, logop::IDLE);
    }

    #[test]
    fn dir_rename_flag() {
        let r = region();
        let b = DirBlock(PPtr::new(4096));
        b.init(&r, true);
        b.set_flag(&r, DF_RENAME);
        assert!(b.flags(&r) & DF_RENAME != 0);
        assert!(b.is_first(&r), "other flags preserved");
        b.clear_flag(&r, DF_RENAME);
        assert_eq!(b.flags(&r) & DF_RENAME, 0);
    }
}
