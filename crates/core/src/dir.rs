//! Directory operations over chained hash blocks (§4.3, Fig. 5).
//!
//! A directory is a chain of [`DirBlock`]s; a name hashes to a *line*, and
//! each block contributes one slot per line. Writers serialize per line via
//! the busy flags in the first block; readers are lock-free and rely on the
//! valid/dirty object headers to skip entries whose operation is in flight.
//!
//! Every mutating protocol follows the exact persist-step order of Fig. 5,
//! and every intermediate state maps to a unique repair action implemented
//! in [`repair_line`] — which is invoked both by mount-time recovery and,
//! decentralized as in the paper, by any process that times out waiting on
//! a busy flag (the previous holder is presumed crashed).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use simurgh_fsapi::types::FileType;
use simurgh_fsapi::{FsError, FsResult};
use simurgh_pmem::{PPtr, PmemRegion};

use crate::alloc::{lock_stats, Backoff, MetaAllocator};
use crate::dindex::{DirIndex, IndexHit};
use crate::hash::{dir_line, fnv1a};
use crate::obj::dirblock::{logop, DirBlock, RenameLog, DF_RENAME, NLINES};
use crate::obj::fentry::FileEntry;
use crate::obj::{self, Tag};
use crate::super_block::PoolKind;

/// Default busy-flag wait before a waiter presumes the holder crashed and
/// repairs the line itself.
pub const DEFAULT_LINE_MAX_HOLD: Duration = Duration::from_millis(200);

/// Probe accounting for the directory hot paths. Counters are bumped with
/// relaxed atomics (negligible cost, exact under a quiescent snapshot) and
/// exist so the O(1) claim of the shared-DRAM index is *asserted* by tests
/// and exported by the bench harness, not eyeballed.
#[derive(Default)]
pub struct DirStats {
    /// `find_entry` calls (every lookup-by-name, including internal ones).
    pub lookups: AtomicU64,
    /// Lookups answered by a verified index hit.
    pub index_hits: AtomicU64,
    /// Misses answered authoritatively by per-line completeness.
    pub index_absent: AtomicU64,
    /// Stale index entries evicted after failing verification.
    pub stale_evicted: AtomicU64,
    /// Fallback chain walks (no index, incomplete line, or stale hit).
    pub chain_walks: AtomicU64,
    /// Blocks probed during fallback chain walks.
    pub chain_probes: AtomicU64,
    /// Insert-path slot searches resolved by a free-slot hint.
    pub hint_hits: AtomicU64,
    /// Stale free-slot hints dropped (slot re-taken before the pop).
    pub hint_stale: AtomicU64,
    /// Blocks probed while searching for / extending to a free slot.
    pub slot_probes: AtomicU64,
    /// Chain extensions (a new hash block was linked).
    pub extends: AtomicU64,
}

impl DirStats {
    pub fn snapshot(&self) -> DirStatsSnapshot {
        let r = |c: &AtomicU64| c.load(Ordering::Relaxed);
        DirStatsSnapshot {
            lookups: r(&self.lookups),
            index_hits: r(&self.index_hits),
            index_absent: r(&self.index_absent),
            stale_evicted: r(&self.stale_evicted),
            chain_walks: r(&self.chain_walks),
            chain_probes: r(&self.chain_probes),
            hint_hits: r(&self.hint_hits),
            hint_stale: r(&self.hint_stale),
            slot_probes: r(&self.slot_probes),
            extends: r(&self.extends),
        }
    }
}

/// A point-in-time copy of [`DirStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStatsSnapshot {
    pub lookups: u64,
    pub index_hits: u64,
    pub index_absent: u64,
    pub stale_evicted: u64,
    pub chain_walks: u64,
    pub chain_probes: u64,
    pub hint_hits: u64,
    pub hint_stale: u64,
    pub slot_probes: u64,
    pub extends: u64,
}

impl DirStatsSnapshot {
    /// Counter deltas since `base` (a snapshot taken earlier).
    pub fn since(&self, base: &DirStatsSnapshot) -> DirStatsSnapshot {
        DirStatsSnapshot {
            lookups: self.lookups - base.lookups,
            index_hits: self.index_hits - base.index_hits,
            index_absent: self.index_absent - base.index_absent,
            stale_evicted: self.stale_evicted - base.stale_evicted,
            chain_walks: self.chain_walks - base.chain_walks,
            chain_probes: self.chain_probes - base.chain_probes,
            hint_hits: self.hint_hits - base.hint_hits,
            hint_stale: self.hint_stale - base.hint_stale,
            slot_probes: self.slot_probes - base.slot_probes,
            extends: self.extends - base.extends,
        }
    }

    /// Blocks touched per lookup, averaged: the number the scaling tests
    /// pin down as O(1). Index hits and authoritative misses cost one probe
    /// each; fallback walks cost their chain probes.
    pub fn probes_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        (self.index_hits + self.index_absent + self.chain_probes) as f64 / self.lookups as f64
    }

    /// JSON object (hand-rolled: all fields are integers), for the bench
    /// harness's machine-readable stats export.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lookups\":{},\"index_hits\":{},\"index_absent\":{},\"stale_evicted\":{},\
             \"chain_walks\":{},\"chain_probes\":{},\"hint_hits\":{},\"hint_stale\":{},\
             \"slot_probes\":{},\"extends\":{}}}",
            self.lookups,
            self.index_hits,
            self.index_absent,
            self.stale_evicted,
            self.chain_walks,
            self.chain_probes,
            self.hint_hits,
            self.hint_stale,
            self.slot_probes,
            self.extends,
        )
    }
}

/// Shared context for directory operations.
#[derive(Clone, Copy)]
pub struct DirEnv<'a> {
    pub region: &'a PmemRegion,
    pub meta: &'a MetaAllocator,
    /// Busy-flag hold limit for crash detection.
    pub max_hold: Duration,
    /// Optional shared-DRAM directory index (see [`crate::dindex`]).
    pub index: Option<&'a DirIndex>,
    /// Optional probe accounting.
    pub stats: Option<&'a DirStats>,
}

impl<'a> DirEnv<'a> {
    pub fn new(region: &'a PmemRegion, meta: &'a MetaAllocator) -> Self {
        DirEnv { region, meta, max_hold: DEFAULT_LINE_MAX_HOLD, index: None, stats: None }
    }

    /// Attaches the shared-DRAM index.
    pub fn with_index(mut self, index: &'a DirIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Attaches probe accounting.
    pub fn with_stats(mut self, stats: &'a DirStats) -> Self {
        self.stats = Some(stats);
        self
    }

    #[inline]
    fn bump(&self, counter: impl Fn(&DirStats) -> &AtomicU64) {
        if let Some(s) = self.stats {
            counter(s).fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// RAII guard over one busy line of a directory.
pub struct LineGuard<'a> {
    region: &'a PmemRegion,
    first: DirBlock,
    line: usize,
}

impl Drop for LineGuard<'_> {
    fn drop(&mut self) {
        self.first.release_busy(self.region, self.line);
    }
}

/// Acquires the busy flag of `line`, running crash recovery on timeout.
pub fn lock_line<'a>(env: &DirEnv<'a>, first: DirBlock, line: usize) -> LineGuard<'a> {
    let start = Instant::now();
    let mut backoff = Backoff::default();
    loop {
        if first.try_busy(env.region, line) {
            lock_stats().acquires.fetch_add(1, Ordering::Relaxed);
            return LineGuard { region: env.region, first, line };
        }
        if start.elapsed() > env.max_hold {
            // Presumed-crashed holder: repair the line, then force-release
            // the flag so everyone can progress (paper §4.3 crash recovery).
            crate::obs::trace(
                crate::obs::EventKind::BusyTimeout,
                first.ptr().off(),
                line as u64,
            );
            repair_line(env, first, line);
            first.release_busy(env.region, line);
            lock_stats().steals.fetch_add(1, Ordering::Relaxed);
            // The takeover is complete: the presumed-dead holder's line is
            // repaired and its flag is ours to race for. Surviving
            // processes prove decentralized recovery by this event.
            crate::obs::trace(
                crate::obs::EventKind::LockSteal,
                first.ptr().off(),
                line as u64,
            );
        }
        backoff.wait();
    }
}

/// Orders two line locks to avoid deadlock between multi-line operations.
fn lock_two<'a>(
    env: &DirEnv<'a>,
    a: (DirBlock, usize),
    b: (DirBlock, usize),
) -> (LineGuard<'a>, Option<LineGuard<'a>>) {
    if a.0 == b.0 && a.1 == b.1 {
        return (lock_line(env, a.0, a.1), None);
    }
    let key = |(d, l): (DirBlock, usize)| (d.ptr().off(), l);
    if key(a) <= key(b) {
        let ga = lock_line(env, a.0, a.1);
        let gb = lock_line(env, b.0, b.1);
        (ga, Some(gb))
    } else {
        let gb = lock_line(env, b.0, b.1);
        let ga = lock_line(env, a.0, a.1);
        (ga, Some(gb))
    }
}

/// Iterates the block chain of a directory.
pub fn chain(region: &PmemRegion, first: DirBlock) -> impl Iterator<Item = DirBlock> + '_ {
    let mut cur = Some(first);
    std::iter::from_fn(move || {
        let blk = cur?;
        let next = blk.next(region);
        cur = if next.is_null() { None } else { Some(DirBlock(next)) };
        Some(blk)
    })
}

/// Whether a published slot holds a *live* entry with this name.
fn live_match(region: &PmemRegion, slot: PPtr, name: &str) -> bool {
    let h = obj::header(region, slot);
    obj::is_valid(h)
        && Tag::from_header(h) == Some(Tag::FileEntry)
        && FileEntry(slot).name_eq(region, name)
}

/// Lock-free lookup of `name`. Entries being deleted (valid bit clear) are
/// skipped; entries being created (dirty but valid) are visible, matching
/// the paper's "published once the hash-line pointer is persisted" point.
pub fn lookup(env: &DirEnv<'_>, first: DirBlock, name: &str) -> Option<FileEntry> {
    let nhash = fnv1a(name.as_bytes());
    find_entry(env, first, (nhash % NLINES as u64) as usize, nhash, name).map(|(_, fe)| fe)
}

/// Finds the `(block, entry)` holding a live `name` at `line` (= `nhash %
/// NLINES`; the caller computes the hash once per operation).
fn find_entry(
    env: &DirEnv<'_>,
    first: DirBlock,
    line: usize,
    nhash: u64,
    name: &str,
) -> Option<(DirBlock, FileEntry)> {
    env.bump(|s| &s.lookups);
    if let Some(ix) = env.index {
        match ix.lookup(first.ptr(), line, nhash) {
            IndexHit::Found(fe, blk) => {
                // Verify against the persistent truth (the index is a hint).
                if env.region.in_bounds(blk.add(8), 8)
                    && DirBlock(blk).line(env.region, line) == fe
                    && live_match(env.region, fe, name)
                {
                    env.bump(|s| &s.index_hits);
                    return Some((DirBlock(blk), FileEntry(fe)));
                }
                // Stale hint: evict it so the verification cost is paid
                // once, not on every future lookup of this name.
                ix.remove(first.ptr(), nhash);
                env.bump(|s| &s.stale_evicted);
            }
            IndexHit::AbsentForSure => {
                env.bump(|s| &s.index_absent);
                return None;
            }
            IndexHit::Unknown => {}
        }
    }
    env.bump(|s| &s.chain_walks);
    for blk in chain(env.region, first) {
        env.bump(|s| &s.chain_probes);
        let slot = blk.line(env.region, line);
        if !slot.is_null() && live_match(env.region, slot, name) {
            if let Some(ix) = env.index {
                ix.insert(first.ptr(), nhash, slot, blk.ptr());
            }
            return Some((blk, FileEntry(slot)));
        }
    }
    None
}

/// Finds a block with a free slot at `line`, extending the chain with a new
/// hash block if necessary (Fig. 5a steps 3–4). Returns the block and
/// whether it was newly allocated (its dirty bit is still set).
fn find_or_extend_slot(
    env: &DirEnv<'_>,
    first: DirBlock,
    line: usize,
) -> FsResult<(DirBlock, bool)> {
    // Deletes stack free slots per (dir, line); pop until one verifies.
    // Stale hints (slot re-taken, block gone) are dropped here — popped and
    // never pushed back — so they cost one probe ever, not one per insert.
    let mut tail_hint = None;
    if let Some(ix) = env.index {
        let (mut hint, tail) = ix.take_free_hint_or_tail(first.ptr(), line);
        tail_hint = tail;
        while let Some(h) = hint {
            if env.region.in_bounds(h.add(8), 8) && DirBlock(h).line(env.region, line).is_null() {
                env.bump(|s| &s.hint_hits);
                return Ok((DirBlock(h), false));
            }
            env.bump(|s| &s.hint_stale);
            hint = ix.take_free_hint(first.ptr(), line);
        }
    }
    // No free slot recorded anywhere before the tail: start from the cached
    // chain tail (one probe in the steady state) rather than walking the
    // whole chain from the first block.
    let start = tail_hint
        .filter(|t| env.region.in_bounds(t.add(8), 8))
        .map(DirBlock)
        .unwrap_or(first);
    let mut cur = start;
    loop {
        env.bump(|s| &s.slot_probes);
        if cur.line(env.region, line).is_null() {
            return Ok((cur, false));
        }
        let next = cur.next(env.region);
        if !next.is_null() {
            cur = DirBlock(next);
            continue;
        }
        // End of chain: extend it. Writers on other lines hold other busy
        // flags and may be extending concurrently — publish the link with a
        // CAS and, on losing, follow the winner's block instead (which may
        // well have a free slot at our line).
        let nb = env.meta.alloc(PoolKind::DirBlock)?;
        let nblk = DirBlock(nb);
        nblk.init(env.region, false);
        if cur.try_set_next(env.region, nb) {
            env.bump(|s| &s.extends);
            if let Some(ix) = env.index {
                ix.set_tail(first.ptr(), nb);
            }
            return Ok((nblk, true));
        }
        env.meta.free(PoolKind::DirBlock, nb);
        cur = DirBlock(cur.next(env.region));
    }
}

/// Creates a directory entry: Fig. 5a steps 2–6 (step 1, inode creation, is
/// the caller's; the inode arrives persisted but still dirty and this
/// function clears its dirty bit before the entry's own).
pub fn insert(
    env: &DirEnv<'_>,
    first: DirBlock,
    name: &str,
    ftype: FileType,
    inode: PPtr,
) -> FsResult<FileEntry> {
    let nhash = fnv1a(name.as_bytes());
    let line = (nhash % NLINES as u64) as usize;
    let _busy = lock_line(env, first, line); // step 3
    if find_entry(env, first, line, nhash, name).is_some() {
        return Err(FsError::Exists);
    }
    // Group commit: the preparation persists (entry body, chain extension,
    // allocator claims) only need to be durable before the step-5 publish,
    // so coalesce their fences into the single `commit()` below.
    let scope = env.region.fence_scope();
    // Step 2: create and persist the file entry (allocated valid|dirty).
    let fe_ptr = env.meta.alloc(PoolKind::FileEntry)?;
    let fe = FileEntry(fe_ptr);
    fe.init(env.region, name, ftype, inode);
    env.region.persist(fe_ptr, crate::obj::fentry::FENTRY_SIZE as usize);
    // Steps 3–4: find (or chain) a block with a free slot at this line.
    let (blk, fresh_block) = match find_or_extend_slot(env, first, line) {
        Ok(v) => v,
        Err(e) => {
            env.meta.free(PoolKind::FileEntry, fe_ptr);
            return Err(e);
        }
    };
    // Step 5: publish & persist the pointer — the commit point. The scope
    // commit makes every staged preparation line durable *before* the
    // pointer store can be observed after a crash.
    scope.commit();
    blk.set_line(env.region, line, fe_ptr);
    if let Some(ix) = env.index {
        ix.insert(first.ptr(), nhash, fe_ptr, blk.ptr());
    }
    // Step 6: clear dirty bits — the file entry's goes LAST. Its dirty bit
    // is what recovery keys the roll-forward on, so everything it vouches
    // for (block, inode) must be clean before it is.
    if fresh_block {
        obj::clear_dirty(env.region, blk.ptr());
    }
    if !inode.is_null() {
        obj::clear_dirty(env.region, inode);
    }
    obj::clear_dirty(env.region, fe_ptr);
    Ok(fe)
}

/// Removes `name`: Fig. 5b. `dispose_inode` runs at step 3 (between the
/// entry's invalidation and its zeroing) and is where the caller drops the
/// inode's link count / frees the inode and data.
pub fn remove(
    env: &DirEnv<'_>,
    first: DirBlock,
    name: &str,
    dispose_inode: impl FnOnce(FileEntry),
) -> FsResult<()> {
    let nhash = fnv1a(name.as_bytes());
    let line = (nhash % NLINES as u64) as usize;
    let _busy = lock_line(env, first, line); // step 1
    let Some((blk, fe)) = find_entry(env, first, line, nhash, name) else {
        return Err(FsError::NotFound);
    };
    // Step 2: unset valid, set dirty on the file entry. Eagerly fenced: the
    // invalidation is the state recovery keys the delete roll-forward on.
    obj::invalidate(env.region, fe.ptr());
    // Group commit over the disposal: the entry is already invalid, so a
    // crash anywhere in steps 3–4 maps to the same repair (finish the free,
    // null the slot) regardless of which staged line became durable.
    let scope = env.region.fence_scope();
    // Step 3: dispose of the inode (zeroed via the metadata allocator when
    // its link count reaches zero).
    dispose_inode(fe);
    // Step 4: zero the file entry (persistently; not yet re-allocatable).
    env.meta.free_no_recycle(PoolKind::FileEntry, fe.ptr());
    // Step 5: zero the pointer in the hash block, after a commit that makes
    // the disposal durable first.
    scope.commit();
    blk.set_line(env.region, line, PPtr::NULL);
    if let Some(ix) = env.index {
        ix.remove(first.ptr(), nhash);
        ix.put_free_hint(first.ptr(), line, blk.ptr());
    }
    // Only now may other processes re-allocate the entry object.
    env.meta.recycle(PoolKind::FileEntry, fe.ptr());
    // Step 6 (optional): free the block if it became empty.
    maybe_reclaim_block(env, first, blk, line);
    Ok(())
}

/// Frees a non-first chain block whose slots are all empty. Safe only if we
/// can take every line of the directory non-blockingly (other lines may be
/// mutated by concurrent holders); gives up on any contention — the paper
/// marks this step optional, and the mount sweep reclaims stragglers.
fn maybe_reclaim_block(env: &DirEnv<'_>, first: DirBlock, blk: DirBlock, held_line: usize) {
    if blk == first {
        return;
    }
    for l in 0..NLINES {
        if !blk.line(env.region, l).is_null() {
            return;
        }
    }
    // Try to freeze the whole directory.
    let mut held = Vec::with_capacity(NLINES - 1);
    for l in 0..NLINES {
        if l == held_line {
            continue;
        }
        if first.try_busy(env.region, l) {
            held.push(l);
        } else {
            for h in held {
                first.release_busy(env.region, h);
            }
            return;
        }
    }
    // Re-check emptiness now that the directory is frozen, then unlink.
    let empty = (0..NLINES).all(|l| blk.line(env.region, l).is_null());
    if empty {
        if let Some(prev) = chain(env.region, first).find(|b| b.next(env.region) == blk.ptr()) {
            let next = blk.next(env.region);
            prev.set_next(env.region, next);
            env.meta.free(PoolKind::DirBlock, blk.ptr());
            if let Some(ix) = env.index {
                // If the freed block was the tail, its predecessor now is —
                // keep the cached tail exact so inserts stay one probe.
                let new_tail = if next.is_null() { prev.ptr() } else { first.ptr() };
                ix.forget_block(first.ptr(), blk.ptr(), new_tail);
            }
        }
    }
    for h in held {
        first.release_busy(env.region, h);
    }
}

/// Renames within one directory: Fig. 5c. A replaced target entry is handed
/// to `dispose_replaced` so the caller can drop its inode.
pub fn rename_same_dir(
    env: &DirEnv<'_>,
    first: DirBlock,
    old_name: &str,
    new_name: &str,
    dispose_replaced: impl FnOnce(FileEntry),
) -> FsResult<()> {
    let old_hash = fnv1a(old_name.as_bytes());
    let new_hash = fnv1a(new_name.as_bytes());
    let old_line = (old_hash % NLINES as u64) as usize;
    let new_line = (new_hash % NLINES as u64) as usize;
    let (_g1, _g2) = lock_two(env, (first, old_line), (first, new_line)); // steps 3–4
    let Some((old_blk, old_fe)) = find_entry(env, first, old_line, old_hash, old_name) else {
        return Err(FsError::NotFound);
    };
    if old_name == new_name {
        return Ok(());
    }
    let inode = old_fe.inode(env.region);
    let ftype = old_fe.ftype(env.region);
    // Replace semantics: a live target is deleted under the same lock.
    let replaced = find_entry(env, first, new_line, new_hash, new_name);
    // Group commit over the preparation (shadow entry + slot reservation):
    // nothing is reachable until DF_RENAME is set, so one fence suffices.
    let scope = env.region.fence_scope();
    // Steps 1–2: shadow entry pointing at the same inode.
    let nfe_ptr = env.meta.alloc(PoolKind::FileEntry)?;
    let nfe = FileEntry(nfe_ptr);
    nfe.init(env.region, new_name, ftype, inode);
    env.region.persist(nfe_ptr, crate::obj::fentry::FENTRY_SIZE as usize);
    // Reserve the destination slot BEFORE step 3: find_or_extend_slot can
    // fail (DirBlock pool exhausted), and once DF_RENAME is set and the old
    // line redirected there is no clean exit. An unused reservation is
    // harmless — the slot simply stays NULL.
    let dest = if replaced.is_some() {
        None
    } else {
        match find_or_extend_slot(env, first, new_line) {
            Ok(d) => Some(d),
            Err(e) => {
                env.meta.free(PoolKind::FileEntry, nfe_ptr);
                return Err(e);
            }
        }
    };
    // Step 3: mark the directory as rename-in-progress, with the prepared
    // entry made durable first by the scope commit.
    scope.commit();
    first.set_flag(env.region, DF_RENAME);
    // Step 5: point the old line at the new entry — the hash mismatch is the
    // recoverable inconsistency the paper exploits.
    old_blk.set_line(env.region, old_line, nfe_ptr);
    // Step 6: the old entry object is no longer needed.
    obj::invalidate(env.region, old_fe.ptr());
    env.meta.free_no_recycle(PoolKind::FileEntry, old_fe.ptr());
    // Step 7: publish the entry at its correct line.
    if let Some((rblk, rfe)) = replaced {
        obj::invalidate(env.region, rfe.ptr());
        dispose_replaced(rfe);
        env.meta.free_no_recycle(PoolKind::FileEntry, rfe.ptr());
        rblk.set_line(env.region, new_line, nfe_ptr);
        env.meta.recycle(PoolKind::FileEntry, rfe.ptr());
        if let Some(ix) = env.index {
            ix.insert(first.ptr(), new_hash, nfe_ptr, rblk.ptr());
        }
    } else {
        let (nblk, fresh) = dest.expect("slot reserved before DF_RENAME was set");
        nblk.set_line(env.region, new_line, nfe_ptr);
        if fresh {
            obj::clear_dirty(env.region, nblk.ptr());
        }
        if let Some(ix) = env.index {
            ix.insert(first.ptr(), new_hash, nfe_ptr, nblk.ptr());
        }
    }
    // Step 8: remove the mismatched pointer from the old line.
    old_blk.set_line(env.region, old_line, PPtr::NULL);
    env.meta.recycle(PoolKind::FileEntry, old_fe.ptr());
    obj::clear_dirty(env.region, nfe_ptr);
    first.clear_flag(env.region, DF_RENAME);
    if let Some(ix) = env.index {
        ix.remove(first.ptr(), old_hash);
        ix.put_free_hint(first.ptr(), old_line, old_blk.ptr());
    }
    Ok(())
}

/// Cross-directory rename, journaled through the source directory's log
/// entry (§4.3 "Cross directory renames").
pub fn rename_cross_dir(
    env: &DirEnv<'_>,
    src: DirBlock,
    old_name: &str,
    dst: DirBlock,
    new_name: &str,
    dispose_replaced: impl FnOnce(FileEntry),
) -> FsResult<()> {
    let old_hash = fnv1a(old_name.as_bytes());
    let new_hash = fnv1a(new_name.as_bytes());
    let old_line = (old_hash % NLINES as u64) as usize;
    let new_line = (new_hash % NLINES as u64) as usize;
    // Step 3 (locks) taken up front; ordered by (dir, line) to avoid
    // deadlock with the reverse rename.
    let (_g1, _g2) = lock_two(env, (src, old_line), (dst, new_line));
    let Some((old_blk, old_fe)) = find_entry(env, src, old_line, old_hash, old_name) else {
        return Err(FsError::NotFound);
    };
    let inode = old_fe.inode(env.region);
    let ftype = old_fe.ftype(env.region);
    let replaced = find_entry(env, dst, new_line, new_hash, new_name);
    // Group commit over the preparation: the new entry and the reserved
    // slot are unreachable until the log is armed, so their persists
    // coalesce into the commit before `write_log`.
    let scope = env.region.fence_scope();
    // New entry for the destination directory.
    let nfe_ptr = env.meta.alloc(PoolKind::FileEntry)?;
    let nfe = FileEntry(nfe_ptr);
    nfe.init(env.region, new_name, ftype, inode);
    env.region.persist(nfe_ptr, crate::obj::fentry::FENTRY_SIZE as usize);
    // Reserve the destination slot BEFORE arming the log: find_or_extend_slot
    // can fail (DirBlock pool exhausted), and bailing out with the journal
    // armed and DF_RENAME set would leave the source directory in a repair
    // state for an operation that never happened.
    let dest = if replaced.is_some() {
        None
    } else {
        match find_or_extend_slot(env, dst, new_line) {
            Ok(d) => Some(d),
            Err(e) => {
                env.meta.free(PoolKind::FileEntry, nfe_ptr);
                return Err(e);
            }
        }
    };
    // Steps 1–2: arm the log in the source directory and set its dirty flag,
    // with the preparation made durable first by the scope commit.
    scope.commit();
    src.write_log(
        env.region,
        &RenameLog {
            op: logop::CROSS_RENAME,
            src_dir: src.ptr().off(),
            dst_dir: dst.ptr().off(),
            inode: inode.off(),
            old_fentry: old_fe.ptr().off(),
            new_fentry: nfe_ptr.off(),
            old_line: old_line as u64,
            new_line: new_line as u64,
        },
    );
    src.set_flag(env.region, DF_RENAME);
    // Step 4: perform the operation — publish at destination, then retire
    // the source entry.
    if let Some((rblk, rfe)) = replaced {
        obj::invalidate(env.region, rfe.ptr());
        dispose_replaced(rfe);
        env.meta.free_no_recycle(PoolKind::FileEntry, rfe.ptr());
        rblk.set_line(env.region, new_line, nfe_ptr);
        env.meta.recycle(PoolKind::FileEntry, rfe.ptr());
        if let Some(ix) = env.index {
            ix.insert(dst.ptr(), new_hash, nfe_ptr, rblk.ptr());
        }
    } else {
        let (nblk, fresh) = dest.expect("slot reserved before the log was armed");
        nblk.set_line(env.region, new_line, nfe_ptr);
        if fresh {
            obj::clear_dirty(env.region, nblk.ptr());
        }
        if let Some(ix) = env.index {
            ix.insert(dst.ptr(), new_hash, nfe_ptr, nblk.ptr());
        }
    }
    obj::clear_dirty(env.region, nfe_ptr);
    obj::invalidate(env.region, old_fe.ptr());
    env.meta.free_no_recycle(PoolKind::FileEntry, old_fe.ptr());
    old_blk.set_line(env.region, old_line, PPtr::NULL);
    env.meta.recycle(PoolKind::FileEntry, old_fe.ptr());
    if let Some(ix) = env.index {
        ix.remove(src.ptr(), old_hash);
        ix.put_free_hint(src.ptr(), old_line, old_blk.ptr());
    }
    // Disarm the log.
    src.clear_log(env.region);
    src.clear_flag(env.region, DF_RENAME);
    Ok(())
}

/// Scans every live entry of a directory.
pub fn scan(env: &DirEnv<'_>, first: DirBlock) -> Vec<(String, FileType, PPtr)> {
    let mut out = Vec::new();
    for blk in chain(env.region, first) {
        for line in 0..NLINES {
            let slot = blk.line(env.region, line);
            if slot.is_null() {
                continue;
            }
            let h = obj::header(env.region, slot);
            if obj::is_valid(h) && Tag::from_header(h) == Some(Tag::FileEntry) {
                let fe = FileEntry(slot);
                out.push((fe.name(env.region), fe.ftype(env.region), fe.inode(env.region)));
            }
        }
    }
    out
}

/// Whether the directory has no live entries.
pub fn is_empty(env: &DirEnv<'_>, first: DirBlock) -> bool {
    for blk in chain(env.region, first) {
        for line in 0..NLINES {
            let slot = blk.line(env.region, line);
            if !slot.is_null() && obj::is_valid(obj::header(env.region, slot)) {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Decentralized repair
// ---------------------------------------------------------------------------

/// Repairs one hash line after a presumed process crash. Every intermediate
/// state of the Fig. 5 protocols maps to exactly one action here:
///
/// * slot → entry with `valid=0` (delete or rename retirement died between
///   steps 2 and 5): finish zeroing the entry and null the slot;
/// * slot → entry with `valid=1, dirty=1` whose name hashes to this line
///   (create died before step 6): the entry is fully published — clear the
///   dirty bits (roll forward);
/// * slot → entry whose name hashes to a *different* line while the
///   directory's rename flag is set (intra-dir rename died between steps 5
///   and 8): make sure the entry is published at its home line, then null
///   the mismatched slot;
/// * armed cross-directory log: [`recover_cross_rename`].
pub fn repair_line(env: &DirEnv<'_>, first: DirBlock, line: usize) {
    if let Some(ix) = env.index {
        // The index may hold hints invalidated by the crashed operation;
        // drop authority for this line only — other lines' slots cannot be
        // touched by an operation that held this line's busy flag.
        ix.mark_line_incomplete(first.ptr(), line);
    }
    let log = first.read_log(env.region);
    if log.op == logop::CROSS_RENAME {
        recover_cross_rename(env, first, &log);
    }
    // A mid-rename entry found on this line has its home on a *different*
    // line whose index authority we also disturb when rolling it forward.
    let mut touched_home: Option<usize> = None;
    for blk in chain(env.region, first) {
        let slot = blk.line(env.region, line);
        if slot.is_null() {
            continue;
        }
        if !env.region.in_bounds(slot, 8) {
            blk.set_line(env.region, line, PPtr::NULL);
            continue;
        }
        let h = obj::header(env.region, slot);
        if Tag::from_header(h) != Some(Tag::FileEntry) || !obj::is_valid(h) {
            // Interrupted delete / retired rename source: finish it.
            if h != 0 {
                env.meta.free_no_recycle(PoolKind::FileEntry, slot);
            }
            blk.set_line(env.region, line, PPtr::NULL);
            if h != 0 {
                env.meta.recycle(PoolKind::FileEntry, slot);
            }
            continue;
        }
        let fe = FileEntry(slot);
        let home = dir_line(&fe.name(env.region), NLINES);
        if home != line {
            // Mid-rename mismatch: roll the rename forward.
            if let Some(ix) = env.index {
                ix.mark_line_incomplete(first.ptr(), home);
            }
            touched_home = Some(home);
            let published_home =
                chain(env.region, first).any(|b| b.line(env.region, home) == slot);
            if !published_home {
                if let Ok((nblk, fresh)) = find_or_extend_slot(env, first, home) {
                    nblk.set_line(env.region, home, slot);
                    if fresh {
                        obj::clear_dirty(env.region, nblk.ptr());
                    }
                }
            }
            blk.set_line(env.region, line, PPtr::NULL);
            obj::clear_dirty(env.region, slot);
            first.clear_flag(env.region, DF_RENAME);
            continue;
        }
        if obj::is_dirty(h) {
            // Interrupted create (after the step-5 commit): roll forward.
            let inode = fe.inode(env.region);
            if !inode.is_null() && env.region.in_bounds(inode, 8) {
                let ih = obj::header(env.region, inode);
                if obj::is_valid(ih) && obj::is_dirty(ih) {
                    obj::clear_dirty(env.region, inode);
                }
            }
            obj::clear_dirty(env.region, slot);
        }
    }
    // The line is consistent again: rebuild its index entries in place so
    // lookups re-converge to O(1) without a full-directory rescan.
    if env.index.is_some() {
        reindex_line(env, first, line);
        if let Some(home) = touched_home {
            reindex_line(env, first, home);
        }
    }
}

/// Completes an interrupted cross-directory rename from its log entry. The
/// decision point: if the new entry has been published in the destination
/// chain, roll forward (retire the source entry); otherwise roll back
/// (discard the new entry, keep the source).
pub fn recover_cross_rename(env: &DirEnv<'_>, src: DirBlock, log: &RenameLog) {
    let dst = DirBlock(PPtr::new(log.dst_dir));
    let nfe = PPtr::new(log.new_fentry);
    let old = PPtr::new(log.old_fentry);
    let new_line = log.new_line as usize;
    let old_line = log.old_line as usize;
    let dst_ok = env.region.in_bounds(dst.ptr(), 8) && new_line < NLINES;
    if let Some(ix) = env.index {
        // Only the two lines named by the log can hold torn state; every
        // other line of both directories keeps its index authority.
        if old_line < NLINES {
            ix.mark_line_incomplete(src.ptr(), old_line);
        }
        if dst_ok {
            ix.mark_line_incomplete(dst.ptr(), new_line);
        }
    }

    let published = new_line < NLINES
        && env.region.in_bounds(nfe, 8)
        && env.region.in_bounds(dst.ptr(), 8)
        && chain(env.region, dst).any(|b| b.line(env.region, new_line) == nfe);
    if published {
        // Roll forward: make the new entry consistent, retire the old one.
        if obj::is_valid(obj::header(env.region, nfe)) {
            obj::clear_dirty(env.region, nfe);
        }
        for blk in chain(env.region, src) {
            if blk.line(env.region, old_line) == old {
                let h = obj::header(env.region, old);
                if h != 0 {
                    env.meta.free_no_recycle(PoolKind::FileEntry, old);
                }
                blk.set_line(env.region, old_line, PPtr::NULL);
                if h != 0 {
                    env.meta.recycle(PoolKind::FileEntry, old);
                }
            }
        }
    } else {
        // Roll back: the new entry never became reachable; discard it if it
        // was allocated, and leave the source entry untouched.
        if env.region.in_bounds(nfe, 8) {
            let h = obj::header(env.region, nfe);
            if h != 0 && Tag::from_header(h) == Some(Tag::FileEntry) {
                env.meta.free(PoolKind::FileEntry, nfe);
            }
        }
        if env.region.in_bounds(old, 8) && obj::is_valid(obj::header(env.region, old)) {
            obj::clear_dirty(env.region, old);
        }
    }
    src.clear_log(env.region);
    src.clear_flag(env.region, DF_RENAME);
    // Both touched lines are consistent again — restore their authority.
    if env.index.is_some() {
        if old_line < NLINES {
            reindex_line(env, src, old_line);
        }
        if dst_ok {
            reindex_line(env, dst, new_line);
        }
    }
}

/// Repairs every line and the log of one directory (mount-time use).
pub fn repair_dir(env: &DirEnv<'_>, first: DirBlock) {
    let log = first.read_log(env.region);
    if log.op == logop::CROSS_RENAME {
        recover_cross_rename(env, first, &log);
    }
    for line in 0..NLINES {
        repair_line(env, first, line);
    }
    first.clear_all_busy(env.region);
    if env.index.is_some() {
        reindex_dir(env, first);
    }
}

/// Rebuilds the index state of a single hash line from the persistent
/// chain and restores that line's lookup authority. One chain walk: live
/// entries are (re-)inserted, free slots on non-tail blocks become free
/// hints (the tail's slot is found by the walk-from-tail in
/// [`find_or_extend_slot`], so hinting it would be redundant).
pub fn reindex_line(env: &DirEnv<'_>, first: DirBlock, line: usize) {
    let Some(ix) = env.index else {
        return;
    };
    ix.clear_free_hints(first.ptr(), line);
    let mut free: Vec<PPtr> = Vec::new();
    let mut tail = first;
    for blk in chain(env.region, first) {
        tail = blk;
        let slot = blk.line(env.region, line);
        if slot.is_null() {
            free.push(blk.ptr());
            continue;
        }
        let h = obj::header(env.region, slot);
        if obj::is_valid(h) && Tag::from_header(h) == Some(Tag::FileEntry) {
            let name = FileEntry(slot).name(env.region);
            ix.insert(first.ptr(), fnv1a(name.as_bytes()), slot, blk.ptr());
        }
    }
    ix.set_tail(first.ptr(), tail.ptr());
    for blk in free {
        if blk != tail.ptr() {
            ix.put_free_hint(first.ptr(), line, blk);
        }
    }
    ix.mark_line_complete(first.ptr(), line);
}

/// Rebuilds the shared-DRAM index entries of one directory from its
/// persistent chain and restores lookup authority (mount-time "rebuilding
/// the shared memory data structures", and the tail of a runtime repair).
pub fn reindex_dir(env: &DirEnv<'_>, first: DirBlock) {
    let Some(ix) = env.index else {
        return;
    };
    ix.clear_all_free_hints(first.ptr());
    let blocks: Vec<DirBlock> = chain(env.region, first).collect();
    let tail = *blocks.last().unwrap_or(&first);
    for blk in &blocks {
        let is_tail = blk.ptr() == tail.ptr();
        for line in 0..NLINES {
            let slot = blk.line(env.region, line);
            if slot.is_null() {
                // The common mount-time case is a single-block directory,
                // where every empty line would hint its own (tail) block;
                // skip those so rebuilding many small dirs allocates nothing.
                if !is_tail {
                    ix.put_free_hint(first.ptr(), line, blk.ptr());
                }
                continue;
            }
            let h = obj::header(env.region, slot);
            if obj::is_valid(h) && Tag::from_header(h) == Some(Tag::FileEntry) {
                let name = FileEntry(slot).name(env.region);
                ix.insert(first.ptr(), fnv1a(name.as_bytes()), slot, blk.ptr());
            }
        }
    }
    ix.set_tail(first.ptr(), tail.ptr());
    ix.mark_complete(first.ptr());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::BlockAlloc;
    use crate::super_block::Superblock;
    use simurgh_pmem::layout::Extent;
    use std::sync::Arc;

    struct Fixture {
        region: Arc<PmemRegion>,
        _blocks: Arc<BlockAlloc>,
        meta: Arc<MetaAllocator>,
    }

    impl Fixture {
        fn new() -> Self {
            let region = Arc::new(PmemRegion::new(8 << 20));
            let data = Extent { start: PPtr::new(4096), len: (8 << 20) - 4096 };
            Superblock::format(&region, PPtr::NULL, data);
            let blocks = Arc::new(BlockAlloc::new(data, 2));
            let meta = Arc::new(MetaAllocator::new(region.clone(), blocks.clone()));
            Fixture { region, _blocks: blocks, meta }
        }

        fn env(&self) -> DirEnv<'_> {
            let mut e = DirEnv::new(&self.region, &self.meta);
            e.max_hold = Duration::from_millis(20);
            e
        }

        fn new_dir(&self) -> DirBlock {
            let p = self.meta.alloc(PoolKind::DirBlock).unwrap();
            let d = DirBlock(p);
            d.init(&self.region, true);
            obj::clear_dirty(&self.region, p);
            d
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let fx = Fixture::new();
        let env = fx.env();
        let dir = fx.new_dir();
        insert(&env, dir, "alpha", FileType::Regular, PPtr::new(1 << 16)).unwrap();
        let fe = lookup(&env, dir, "alpha").expect("found");
        assert_eq!(fe.inode(&fx.region), PPtr::new(1 << 16));
        assert!(lookup(&env, dir, "beta").is_none());
        assert_eq!(
            insert(&env, dir, "alpha", FileType::Regular, PPtr::new(2 << 16)).unwrap_err(),
            FsError::Exists
        );
        let mut disposed = false;
        remove(&env, dir, "alpha", |_| disposed = true).unwrap();
        assert!(disposed);
        assert!(lookup(&env, dir, "alpha").is_none());
        assert_eq!(remove(&env, dir, "alpha", |_| {}).unwrap_err(), FsError::NotFound);
    }

    #[test]
    fn colliding_names_chain_blocks() {
        let fx = Fixture::new();
        let env = fx.env();
        let dir = fx.new_dir();
        // Find several names hashing to the same line.
        let target = dir_line("seed", NLINES);
        let mut names = vec!["seed".to_owned()];
        let mut i = 0;
        while names.len() < 4 {
            let cand = format!("n{i}");
            if dir_line(&cand, NLINES) == target {
                names.push(cand);
            }
            i += 1;
        }
        for (k, n) in names.iter().enumerate() {
            insert(&env, dir, n, FileType::Regular, PPtr::new((k as u64 + 1) * 4096)).unwrap();
        }
        assert!(chain(&fx.region, dir).count() >= 4, "chain extended per collision");
        for (k, n) in names.iter().enumerate() {
            let fe = lookup(&env, dir, n).expect("collided name found");
            assert_eq!(fe.inode(&fx.region), PPtr::new((k as u64 + 1) * 4096));
        }
        // Remove from the middle of the chain and re-check the rest.
        remove(&env, dir, &names[1], |_| {}).unwrap();
        assert!(lookup(&env, dir, &names[1]).is_none());
        for n in [&names[0], &names[2], &names[3]] {
            assert!(lookup(&env, dir, n).is_some());
        }
    }

    #[test]
    fn scan_and_is_empty() {
        let fx = Fixture::new();
        let env = fx.env();
        let dir = fx.new_dir();
        assert!(is_empty(&env, dir));
        for n in ["a", "b", "c"] {
            insert(&env, dir, n, FileType::Regular, PPtr::new(4096)).unwrap();
        }
        let mut names: Vec<_> = scan(&env, dir).into_iter().map(|(n, _, _)| n).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(!is_empty(&env, dir));
        for n in ["a", "b", "c"] {
            remove(&env, dir, n, |_| {}).unwrap();
        }
        assert!(is_empty(&env, dir));
    }

    #[test]
    fn rename_same_dir_moves_entry() {
        let fx = Fixture::new();
        let env = fx.env();
        let dir = fx.new_dir();
        insert(&env, dir, "old", FileType::Regular, PPtr::new(4096)).unwrap();
        rename_same_dir(&env, dir, "old", "new", |_| {}).unwrap();
        assert!(lookup(&env, dir, "old").is_none());
        let fe = lookup(&env, dir, "new").expect("renamed");
        assert_eq!(fe.inode(&fx.region), PPtr::new(4096));
        assert_eq!(dir.flags(&fx.region) & DF_RENAME, 0, "flag cleared");
        assert_eq!(rename_same_dir(&env, dir, "old", "x", |_| {}).unwrap_err(), FsError::NotFound);
    }

    #[test]
    fn rename_same_dir_replaces_target() {
        let fx = Fixture::new();
        let env = fx.env();
        let dir = fx.new_dir();
        insert(&env, dir, "src", FileType::Regular, PPtr::new(4096)).unwrap();
        insert(&env, dir, "dst", FileType::Regular, PPtr::new(8192)).unwrap();
        let mut replaced = None;
        rename_same_dir(&env, dir, "src", "dst", |fe| replaced = Some(fe.inode(&fx.region)))
            .unwrap();
        assert_eq!(replaced, Some(PPtr::new(8192)));
        assert!(lookup(&env, dir, "src").is_none());
        assert_eq!(lookup(&env, dir, "dst").unwrap().inode(&fx.region), PPtr::new(4096));
        assert_eq!(scan(&env, dir).len(), 1);
    }

    #[test]
    fn rename_to_same_name_is_noop() {
        let fx = Fixture::new();
        let env = fx.env();
        let dir = fx.new_dir();
        insert(&env, dir, "same", FileType::Regular, PPtr::new(4096)).unwrap();
        rename_same_dir(&env, dir, "same", "same", |_| {}).unwrap();
        assert!(lookup(&env, dir, "same").is_some());
    }

    #[test]
    fn cross_dir_rename_moves_entry() {
        let fx = Fixture::new();
        let env = fx.env();
        let a = fx.new_dir();
        let b = fx.new_dir();
        insert(&env, a, "file", FileType::Regular, PPtr::new(4096)).unwrap();
        rename_cross_dir(&env, a, "file", b, "moved", |_| {}).unwrap();
        assert!(lookup(&env, a, "file").is_none());
        assert_eq!(lookup(&env, b, "moved").unwrap().inode(&fx.region), PPtr::new(4096));
        assert_eq!(a.read_log(&fx.region).op, logop::IDLE, "log disarmed");
        assert!(is_empty(&env, a));
    }

    #[test]
    fn cross_dir_rename_replaces_target() {
        let fx = Fixture::new();
        let env = fx.env();
        let a = fx.new_dir();
        let b = fx.new_dir();
        insert(&env, a, "x", FileType::Regular, PPtr::new(4096)).unwrap();
        insert(&env, b, "y", FileType::Regular, PPtr::new(8192)).unwrap();
        let mut replaced = None;
        rename_cross_dir(&env, a, "x", b, "y", |fe| replaced = Some(fe.inode(&fx.region)))
            .unwrap();
        assert_eq!(replaced, Some(PPtr::new(8192)));
        assert_eq!(lookup(&env, b, "y").unwrap().inode(&fx.region), PPtr::new(4096));
    }

    #[test]
    fn crashed_holder_line_is_repaired_by_waiter() {
        let fx = Fixture::new();
        let env = fx.env();
        let dir = fx.new_dir();
        insert(&env, dir, "victim", FileType::Regular, PPtr::new(4096)).unwrap();
        // Simulate a process that died holding the busy flag mid-delete:
        // the entry is invalidated but the slot still points at it.
        let line = dir_line("victim", NLINES);
        assert!(dir.try_busy(&fx.region, line));
        let fe = lookup(&env, dir, "victim").unwrap();
        obj::invalidate(&fx.region, fe.ptr());
        // A second process now inserts a same-line name: it must time out,
        // repair, and succeed.
        let mut collide = None;
        for i in 0.. {
            let cand = format!("c{i}");
            if dir_line(&cand, NLINES) == line {
                collide = Some(cand);
                break;
            }
        }
        let name = collide.unwrap();
        insert(&env, dir, &name, FileType::Regular, PPtr::new(8192)).unwrap();
        assert!(lookup(&env, dir, &name).is_some());
        assert!(lookup(&env, dir, "victim").is_none(), "interrupted delete completed");
    }

    #[test]
    fn concurrent_inserts_same_directory() {
        let fx = Fixture::new();
        let dir = fx.new_dir();
        let region = &fx.region;
        let meta = &fx.meta;
        crossbeam::thread::scope(|s| {
            for t in 0..4u32 {
                s.spawn(move |_| {
                    let env = DirEnv::new(region, meta);
                    for i in 0..100 {
                        insert(&env, dir, &format!("t{t}-f{i}"), FileType::Regular, PPtr::new(4096))
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let env = fx.env();
        assert_eq!(scan(&env, dir).len(), 400);
        for t in 0..4 {
            for i in 0..100 {
                assert!(lookup(&env, dir, &format!("t{t}-f{i}")).is_some());
            }
        }
    }

    #[test]
    fn concurrent_create_delete_churn() {
        let fx = Fixture::new();
        let dir = fx.new_dir();
        let region = &fx.region;
        let meta = &fx.meta;
        crossbeam::thread::scope(|s| {
            for t in 0..4u32 {
                s.spawn(move |_| {
                    let env = DirEnv::new(region, meta);
                    for i in 0..60 {
                        let name = format!("churn-{t}-{i}");
                        insert(&env, dir, &name, FileType::Regular, PPtr::new(4096)).unwrap();
                        if i % 2 == 0 {
                            remove(&env, dir, &name, |_| {}).unwrap();
                        }
                    }
                });
            }
        })
        .unwrap();
        let env = fx.env();
        assert_eq!(scan(&env, dir).len(), 4 * 30);
    }

    #[test]
    fn repair_dir_clears_stale_busy_flags() {
        let fx = Fixture::new();
        let env = fx.env();
        let dir = fx.new_dir();
        insert(&env, dir, "keep", FileType::Regular, PPtr::new(4096)).unwrap();
        for l in [1, 5, 77] {
            dir.try_busy(&fx.region, l);
        }
        repair_dir(&env, dir);
        for l in [1, 5, 77] {
            assert!(!dir.is_busy(&fx.region, l));
        }
        assert!(lookup(&env, dir, "keep").is_some());
    }
}
