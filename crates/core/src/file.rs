//! The file data path (§4.3 "Data operations").
//!
//! File bytes live in 4-KB blocks from the segmented allocator, described
//! by extents: three inline in the inode, the rest in chained overflow
//! extent blocks. Writes use emulated non-temporal stores and are fenced
//! **before** the size field is updated, giving the paper's guarantee that
//! "metadata updates occur after the data has been persisted".
//!
//! Each file has one reader/writer lock embedded in its inode — writes are
//! exclusive, reads concurrent. The *relaxed* mode of Fig. 7k disables the
//! write lock for applications that coordinate their own writers.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use simurgh_fsapi::{FsError, FsResult};
use simurgh_pmem::{PPtr, PmemRegion};

use crate::alloc::BlockAlloc;
use crate::obj::inode::{extblock, Extent, Inode, INLINE_EXTENTS};
use crate::BLOCK_SIZE;

/// Writer bit of the per-file lock word.
const WRITER: u64 = 1 << 63;

/// Default lock-hold limit before a waiter presumes the holder crashed and
/// resets the lock (the lock word is volatile state; see module docs).
pub const DEFAULT_FILE_MAX_HOLD: Duration = Duration::from_millis(500);

/// Context for data-path operations.
#[derive(Clone, Copy)]
pub struct FileEnv<'a> {
    pub region: &'a PmemRegion,
    pub blocks: &'a BlockAlloc,
    /// Skip the per-file write lock (paper's relaxed shared-file writes).
    pub relaxed: bool,
    pub max_hold: Duration,
}

impl<'a> FileEnv<'a> {
    pub fn new(region: &'a PmemRegion, blocks: &'a BlockAlloc) -> Self {
        FileEnv { region, blocks, relaxed: false, max_hold: DEFAULT_FILE_MAX_HOLD }
    }
}

// ---------------------------------------------------------------------------
// Per-file reader/writer lock
// ---------------------------------------------------------------------------

/// Shared-read guard on a file.
pub struct ReadGuard<'a> {
    region: &'a PmemRegion,
    lock: PPtr,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.region.atomic_u64(self.lock).fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exclusive-write guard on a file. `None` inside means relaxed mode.
pub struct WriteGuard<'a> {
    region: Option<&'a PmemRegion>,
    lock: PPtr,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        if let Some(r) = self.region {
            r.atomic_u64(self.lock).fetch_and(!WRITER, Ordering::AcqRel);
        }
    }
}

/// Acquires the shared side of a file's lock; a stuck writer is presumed
/// crashed after `max_hold` and the lock word is reset.
pub fn lock_read<'a>(env: &FileEnv<'a>, ino: Inode) -> ReadGuard<'a> {
    let lock = ino.lock_ptr();
    let a = env.region.atomic_u64(lock);
    let start = Instant::now();
    let mut spins = 0u32;
    loop {
        let s = a.load(Ordering::Acquire);
        if s & WRITER == 0 {
            if a.compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                return ReadGuard { region: env.region, lock };
            }
        } else if start.elapsed() > env.max_hold {
            a.store(0, Ordering::Release); // crashed writer: reset
        }
        std::hint::spin_loop();
        spins += 1;
        if spins.is_multiple_of(64) {
            std::thread::yield_now(); // oversubscribed-host courtesy
        }
    }
}

/// Acquires the exclusive side; no-op in relaxed mode.
pub fn lock_write<'a>(env: &FileEnv<'a>, ino: Inode) -> WriteGuard<'a> {
    let lock = ino.lock_ptr();
    if env.relaxed {
        return WriteGuard { region: None, lock };
    }
    let a = env.region.atomic_u64(lock);
    let start = Instant::now();
    let mut spins = 0u32;
    loop {
        if a.compare_exchange_weak(0, WRITER, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            return WriteGuard { region: Some(env.region), lock };
        }
        if start.elapsed() > env.max_hold {
            a.store(0, Ordering::Release); // crashed holder: reset
        }
        std::hint::spin_loop();
        spins += 1;
        if spins.is_multiple_of(64) {
            std::thread::yield_now(); // oversubscribed-host courtesy
        }
    }
}

// ---------------------------------------------------------------------------
// Extent map
// ---------------------------------------------------------------------------

/// Calls `f(logical_start, extent)` for each extent in file order; returns
/// the total allocated bytes.
pub fn for_each_extent(r: &PmemRegion, ino: Inode, mut f: impl FnMut(u64, Extent)) -> u64 {
    let mut logical = 0u64;
    for i in 0..INLINE_EXTENTS {
        let e = ino.extent(r, i);
        if e.is_empty() {
            return logical;
        }
        f(logical, e);
        logical += e.len;
    }
    let mut blk = ino.ext_next(r);
    while !blk.is_null() {
        let n = extblock::count(r, blk);
        for i in 0..n {
            let e = extblock::get(r, blk, i);
            f(logical, e);
            logical += e.len;
        }
        blk = extblock::next(r, blk);
    }
    logical
}

/// Total allocated bytes of a file (multiple of the block size).
pub fn allocated_bytes(r: &PmemRegion, ino: Inode) -> u64 {
    for_each_extent(r, ino, |_, _| {})
}

/// Maps a logical offset to `(pmem address, contiguous bytes available)`.
pub fn map_offset(r: &PmemRegion, ino: Inode, off: u64) -> Option<(PPtr, u64)> {
    let mut found = None;
    for_each_extent(r, ino, |logical, e| {
        if found.is_none() && off >= logical && off < logical + e.len {
            let within = off - logical;
            found = Some((PPtr::new(e.start + within), e.len - within));
        }
    });
    found
}

/// Appends an extent to the file's map, merging with the physical tail when
/// contiguous. Allocates an overflow extent block on demand.
fn push_extent(env: &FileEnv<'_>, ino: Inode, e: Extent) -> FsResult<()> {
    let r = env.region;
    // Inline slots first.
    for i in 0..INLINE_EXTENTS {
        let cur = ino.extent(r, i);
        if cur.is_empty() {
            ino.set_extent(r, i, e);
            return Ok(());
        }
        if cur.start + cur.len == e.start {
            let last_inline = i + 1 == INLINE_EXTENTS || ino.extent(r, i + 1).is_empty();
            let overflow_empty = ino.ext_next(r).is_null();
            if last_inline && overflow_empty {
                ino.set_extent(r, i, Extent { start: cur.start, len: cur.len + e.len });
                return Ok(());
            }
        }
    }
    // Overflow chain.
    let mut blk = ino.ext_next(r);
    if blk.is_null() {
        let nb = env.blocks.alloc(ino.ptr().off() / 64, 1).ok_or(FsError::NoSpace)?;
        extblock::init(r, nb);
        ino.set_ext_next(r, nb);
        blk = nb;
    }
    loop {
        let n = extblock::count(r, blk);
        if n > 0 {
            let last = extblock::get(r, blk, n - 1);
            if last.start + last.len == e.start && extblock::next(r, blk).is_null() {
                extblock::set_len(r, blk, n - 1, last.len + e.len);
                return Ok(());
            }
        }
        if extblock::push(r, blk, e) {
            return Ok(());
        }
        let next = extblock::next(r, blk);
        if next.is_null() {
            let nb = env.blocks.alloc(ino.ptr().off() / 64, 1).ok_or(FsError::NoSpace)?;
            extblock::init(r, nb);
            extblock::set_next(r, blk, nb);
            blk = nb;
        } else {
            blk = next;
        }
    }
}

/// Grows the allocation to at least `want` bytes (block-granular). Newly
/// allocated space is *not* zeroed here; writers zero holes they skip.
pub fn ensure_allocated(env: &FileEnv<'_>, ino: Inode, want: u64) -> FsResult<()> {
    let have = allocated_bytes(env.region, ino);
    if want <= have {
        return Ok(());
    }
    let mut need_blocks = (want - have).div_ceil(BLOCK_SIZE as u64);
    // Allocate in as few contiguous chunks as the allocator can provide:
    // try the whole run first, halve on failure.
    while need_blocks > 0 {
        let mut chunk = need_blocks;
        let ptr = loop {
            match env.blocks.alloc(ino.ptr().off() / 64, chunk) {
                Some(p) => break Some(p),
                None if chunk > 1 => chunk = chunk.div_ceil(2),
                None => break None,
            }
        };
        let Some(p) = ptr else {
            return Err(FsError::NoSpace);
        };
        push_extent(env, ino, Extent { start: p.off(), len: chunk * BLOCK_SIZE as u64 })?;
        need_blocks -= chunk;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Read / write / truncate
// ---------------------------------------------------------------------------

/// Reads up to `buf.len()` bytes at `off`; returns bytes read (0 at EOF).
/// Caller holds the read lock.
pub fn read_at(env: &FileEnv<'_>, ino: Inode, off: u64, buf: &mut [u8]) -> usize {
    let size = ino.size(env.region);
    if off >= size || buf.is_empty() {
        return 0;
    }
    let want = buf.len().min((size - off) as usize);
    let mut done = 0usize;
    while done < want {
        let Some((addr, avail)) = map_offset(env.region, ino, off + done as u64) else {
            break; // hole past allocation (shouldn't happen: size <= allocated)
        };
        let n = (want - done).min(avail as usize);
        env.region.read_into(addr, &mut buf[done..done + n]);
        done += n;
    }
    done
}

/// Writes `data` at `off`, extending allocation and size as needed; returns
/// bytes written. Caller holds the write lock (or runs relaxed).
pub fn write_at(env: &FileEnv<'_>, ino: Inode, off: u64, data: &[u8]) -> FsResult<usize> {
    let r = env.region;
    let end = off + data.len() as u64;
    ensure_allocated(env, ino, end)?;
    let old_size = ino.size(r);
    // Zero any hole between the current end and the write start.
    if off > old_size {
        zero_range(env, ino, old_size, off - old_size);
    }
    // Non-temporal copy of the payload, extent by extent.
    let mut done = 0usize;
    while done < data.len() {
        let (addr, avail) = map_offset(r, ino, off + done as u64)
            .ok_or(FsError::Corrupt("write past allocation"))?;
        let n = (data.len() - done).min(avail as usize);
        r.nt_write_from(addr, &data[done..done + n]);
        done += n;
    }
    // sfence: data durable before the size update (paper ordering).
    r.fence();
    if end > old_size {
        ino.set_size(r, end);
    }
    Ok(data.len())
}

fn zero_range(env: &FileEnv<'_>, ino: Inode, off: u64, len: u64) {
    const ZEROS: [u8; BLOCK_SIZE] = [0u8; BLOCK_SIZE];
    let mut done = 0u64;
    while done < len {
        let Some((addr, avail)) = map_offset(env.region, ino, off + done) else {
            return;
        };
        let n = (len - done).min(avail).min(BLOCK_SIZE as u64);
        env.region.nt_write_from(addr, &ZEROS[..n as usize]);
        done += n;
    }
}

/// Preallocates `[off, off+len)` without zeroing (FxMark DWTL). Extends the
/// size like `fallocate(2)` without `KEEP_SIZE`.
pub fn fallocate(env: &FileEnv<'_>, ino: Inode, off: u64, len: u64) -> FsResult<()> {
    let end = off + len;
    ensure_allocated(env, ino, end)?;
    if end > ino.size(env.region) {
        ino.set_size(env.region, end);
    }
    Ok(())
}

/// Truncates to `len`: shrinking frees whole blocks beyond the new end;
/// growing allocates and zero-fills.
pub fn truncate(env: &FileEnv<'_>, ino: Inode, len: u64) -> FsResult<()> {
    let r = env.region;
    let old = ino.size(r);
    if len > old {
        ensure_allocated(env, ino, len)?;
        zero_range(env, ino, old, len - old);
        r.fence();
        ino.set_size(r, len);
        return Ok(());
    }
    ino.set_size(r, len);
    shrink_allocation(env, ino, len);
    Ok(())
}

/// Frees every whole block past `keep` bytes and trims the extent map.
fn shrink_allocation(env: &FileEnv<'_>, ino: Inode, keep: u64) {
    let r = env.region;
    let keep_alloc = keep.div_ceil(BLOCK_SIZE as u64) * BLOCK_SIZE as u64;
    // Collect the full map, then rewrite it truncated.
    let mut map: Vec<Extent> = Vec::new();
    for_each_extent(r, ino, |_, e| map.push(e));
    let mut logical = 0u64;
    let mut kept: Vec<Extent> = Vec::new();
    for e in &map {
        if logical + e.len <= keep_alloc {
            kept.push(*e);
        } else if logical < keep_alloc {
            let keep_len = keep_alloc - logical;
            kept.push(Extent { start: e.start, len: keep_len });
            env.blocks.free(PPtr::new(e.start + keep_len), (e.len - keep_len) / BLOCK_SIZE as u64);
        } else {
            env.blocks.free(PPtr::new(e.start), e.len / BLOCK_SIZE as u64);
        }
        logical += e.len;
    }
    // Free the overflow chain and rewrite from scratch.
    let mut blk = ino.ext_next(r);
    while !blk.is_null() {
        let next = extblock::next(r, blk);
        env.blocks.free(blk, 1);
        blk = next;
    }
    ino.set_ext_next(r, PPtr::NULL);
    for i in 0..INLINE_EXTENTS {
        ino.set_extent(r, i, Extent::default());
    }
    for e in kept {
        push_extent(env, ino, e).expect("rewriting a smaller map cannot need new space");
    }
}

/// Frees all data and extent blocks of a file (unlink of the last link).
pub fn free_all(env: &FileEnv<'_>, ino: Inode) {
    let r = env.region;
    let mut map: Vec<Extent> = Vec::new();
    for_each_extent(r, ino, |_, e| map.push(e));
    for e in map {
        env.blocks.free(PPtr::new(e.start), e.len / BLOCK_SIZE as u64);
    }
    let mut blk = ino.ext_next(r);
    while !blk.is_null() {
        let next = extblock::next(r, blk);
        env.blocks.free(blk, 1);
        blk = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::inode::INODE_SIZE;
    use simurgh_fsapi::types::FileMode;
    use simurgh_pmem::layout::Extent as LExtent;
    use std::sync::Arc;

    struct Fx {
        region: Arc<PmemRegion>,
        blocks: Arc<BlockAlloc>,
    }

    impl Fx {
        fn new(bytes: usize) -> Self {
            let region = Arc::new(PmemRegion::new(bytes));
            let data = LExtent { start: PPtr::new(64 * 1024), len: bytes as u64 - 64 * 1024 };
            let blocks = Arc::new(BlockAlloc::new(data, 2));
            Fx { region, blocks }
        }

        fn env(&self) -> FileEnv<'_> {
            FileEnv::new(&self.region, &self.blocks)
        }

        fn inode(&self) -> Inode {
            let ino = Inode(PPtr::new(4096));
            ino.init(&self.region, FileMode::file(0o644), 0, 0, 1, 0);
            ino
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let data = b"the quick brown fox";
        assert_eq!(write_at(&env, ino, 0, data).unwrap(), data.len());
        assert_eq!(ino.size(&fx.region), data.len() as u64);
        let mut buf = vec![0u8; 64];
        let n = read_at(&env, ino, 0, &mut buf);
        assert_eq!(&buf[..n], data);
    }

    #[test]
    fn sparse_write_zero_fills_hole() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        write_at(&env, ino, 0, b"head").unwrap();
        write_at(&env, ino, 10_000, b"tail").unwrap();
        assert_eq!(ino.size(&fx.region), 10_004);
        let mut buf = vec![0xffu8; 10_004];
        assert_eq!(read_at(&env, ino, 0, &mut buf), 10_004);
        assert_eq!(&buf[..4], b"head");
        assert!(buf[4..10_000].iter().all(|&b| b == 0), "hole reads as zeros");
        assert_eq!(&buf[10_000..], b"tail");
    }

    #[test]
    fn appends_grow_and_merge_extents() {
        let fx = Fx::new(32 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let chunk = vec![7u8; 4096];
        for i in 0..100u64 {
            write_at(&env, ino, i * 4096, &chunk).unwrap();
        }
        assert_eq!(ino.size(&fx.region), 100 * 4096);
        let mut n_extents = 0;
        for_each_extent(&fx.region, ino, |_, _| n_extents += 1);
        assert!(n_extents <= 10, "contiguous appends merge ({n_extents} extents)");
        let mut buf = vec![0u8; 4096];
        assert_eq!(read_at(&env, ino, 99 * 4096, &mut buf), 4096);
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn large_file_uses_overflow_extents() {
        let fx = Fx::new(64 << 20);
        let env = fx.env();
        let ino = fx.inode();
        // Force fragmentation: allocate a guard block between writes so
        // extents cannot merge.
        for i in 0..8u64 {
            write_at(&env, ino, i * 4096, &[i as u8; 4096]).unwrap();
            let _guard = fx.blocks.alloc(i, 1).unwrap();
        }
        let mut n = 0;
        for_each_extent(&fx.region, ino, |_, _| n += 1);
        assert!(n > INLINE_EXTENTS, "spilled to overflow chain");
        assert!(!ino.ext_next(&fx.region).is_null());
        for i in 0..8u64 {
            let mut buf = [0u8; 4096];
            assert_eq!(read_at(&env, ino, i * 4096, &mut buf), 4096);
            assert!(buf.iter().all(|&b| b == i as u8), "extent {i} intact");
        }
    }

    #[test]
    fn read_past_eof_is_empty() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        write_at(&env, ino, 0, b"xy").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(read_at(&env, ino, 2, &mut buf), 0);
        assert_eq!(read_at(&env, ino, 100, &mut buf), 0);
        assert_eq!(read_at(&env, ino, 0, &mut buf), 2, "short read at boundary");
    }

    #[test]
    fn fallocate_reserves_without_zeroing() {
        let fx = Fx::new(32 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let before = fx.blocks.free_blocks();
        fallocate(&env, ino, 0, 4 << 20).unwrap();
        assert_eq!(ino.size(&fx.region), 4 << 20);
        assert_eq!(before - fx.blocks.free_blocks(), (4 << 20) / 4096);
    }

    #[test]
    fn truncate_shrinks_and_frees() {
        let fx = Fx::new(16 << 20);
        let env = fx.env();
        let ino = fx.inode();
        write_at(&env, ino, 0, &vec![1u8; 1 << 20]).unwrap();
        let after_write = fx.blocks.free_blocks();
        truncate(&env, ino, 4096).unwrap();
        assert_eq!(ino.size(&fx.region), 4096);
        assert!(fx.blocks.free_blocks() > after_write, "blocks returned");
        let mut buf = [0u8; 4096];
        assert_eq!(read_at(&env, ino, 0, &mut buf), 4096);
        assert!(buf.iter().all(|&b| b == 1));
    }

    #[test]
    fn truncate_grow_zero_fills() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        write_at(&env, ino, 0, b"abc").unwrap();
        truncate(&env, ino, 10_000).unwrap();
        assert_eq!(ino.size(&fx.region), 10_000);
        let mut buf = vec![0xffu8; 10_000];
        assert_eq!(read_at(&env, ino, 0, &mut buf), 10_000);
        assert_eq!(&buf[..3], b"abc");
        assert!(buf[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn free_all_returns_every_block() {
        let fx = Fx::new(16 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let before = fx.blocks.free_blocks();
        write_at(&env, ino, 0, &vec![9u8; 2 << 20]).unwrap();
        assert!(fx.blocks.free_blocks() < before);
        free_all(&env, ino);
        assert_eq!(fx.blocks.free_blocks(), before);
    }

    #[test]
    fn rw_lock_excludes_writers() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let g = lock_write(&env, ino);
        // A reader in another thread must not get in while the writer holds.
        let held = std::sync::atomic::AtomicBool::new(true);
        crossbeam::thread::scope(|s| {
            s.spawn(|_| {
                let env2 = fx.env();
                let _r = lock_read(&env2, ino);
                assert!(!held.load(Ordering::SeqCst), "reader entered while writer held");
            });
            std::thread::sleep(Duration::from_millis(20));
            held.store(false, Ordering::SeqCst);
            drop(g);
        })
        .unwrap();
    }

    #[test]
    fn readers_are_concurrent() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let r1 = lock_read(&env, ino);
        let r2 = lock_read(&env, ino);
        assert_eq!(fx.region.atomic_u64(ino.lock_ptr()).load(Ordering::SeqCst), 2);
        drop(r1);
        drop(r2);
        assert_eq!(fx.region.atomic_u64(ino.lock_ptr()).load(Ordering::SeqCst), 0);
    }

    #[test]
    fn crashed_writer_lock_is_reset() {
        let fx = Fx::new(8 << 20);
        let mut env = fx.env();
        env.max_hold = Duration::from_millis(10);
        let ino = fx.inode();
        // Simulate a crashed writer: set the writer bit by hand.
        fx.region.atomic_u64(ino.lock_ptr()).store(WRITER, Ordering::SeqCst);
        let start = Instant::now();
        let g = lock_read(&env, ino);
        assert!(start.elapsed() >= Duration::from_millis(10));
        drop(g);
    }

    #[test]
    fn relaxed_mode_skips_write_lock() {
        let fx = Fx::new(8 << 20);
        let mut env = fx.env();
        env.relaxed = true;
        let ino = fx.inode();
        let g1 = lock_write(&env, ino);
        let g2 = lock_write(&env, ino); // would deadlock if not relaxed
        drop(g1);
        drop(g2);
    }

    #[test]
    fn inode_size_constant_holds() {
        // The lock word and extent map must fit the fixed object.
        assert_eq!(INODE_SIZE, 128);
    }

    #[test]
    fn data_persists_before_size_metadata() {
        // In tracked mode: after write_at returns, a crash must preserve
        // both data and size (fence-then-size ordering).
        let region = Arc::new(PmemRegion::new_tracked(4 << 20));
        let data_ext = LExtent { start: PPtr::new(64 * 1024), len: (4 << 20) - 64 * 1024 };
        let blocks = Arc::new(BlockAlloc::new(data_ext, 1));
        let env = FileEnv::new(&region, &blocks);
        let ino = Inode(PPtr::new(4096));
        ino.init(&region, FileMode::file(0o644), 0, 0, 1, 0);
        region.persist(PPtr::new(4096), 128);
        write_at(&env, ino, 0, b"durable payload").unwrap();
        let crashed = region.simulate_crash();
        let ino2 = Inode(PPtr::new(4096));
        assert_eq!(ino2.size(&crashed), 15);
        let blocks2 = Arc::new(BlockAlloc::new(data_ext, 1));
        let env2 = FileEnv::new(&crashed, &blocks2);
        let mut buf = [0u8; 15];
        assert_eq!(read_at(&env2, ino2, 0, &mut buf), 15);
        assert_eq!(&buf, b"durable payload");
    }
}
