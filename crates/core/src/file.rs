//! The file data path (§4.3 "Data operations").
//!
//! File bytes live in 4-KB blocks from the segmented allocator, described
//! by extents: three inline in the inode, the rest in chained overflow
//! extent blocks. Writes use emulated non-temporal stores and are fenced
//! **before** the size field is updated, giving the paper's guarantee that
//! "metadata updates occur after the data has been persisted".
//!
//! Steady-state reads, writes and appends are O(1) in the number of
//! extents. Each open file carries a [`FileCursor`]: a volatile DRAM
//! mirror of the persistent extent map (sorted `(logical_start, extent)`
//! pairs plus the allocated size and the tail overflow block). Operations
//! binary-search the mirror once and stream; `push_extent` updates the
//! mirror incrementally; `truncate`/`free_all` invalidate it through a
//! generation counter so concurrent openers and post-crash opens rebuild
//! from the persistent map. Appends first ask the allocator for the blocks
//! physically following the tail extent ([`crate::alloc::BlockAlloc::extend_at`]),
//! which grows the tail in place instead of adding a map entry.
//! [`DataStats`] counts walk steps, mirror hits and tail extensions so the
//! O(1) claim is asserted by tests, not eyeballed.
//!
//! Each file has one reader/writer lock embedded in its inode — writes are
//! exclusive, reads concurrent. The *relaxed* mode of Fig. 7k disables the
//! write lock for applications that coordinate their own writers.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use simurgh_fsapi::{FsError, FsResult};
use simurgh_pmem::{PPtr, PmemRegion};

use crate::alloc::{lock_stats, AllocFaults, Backoff, BlockAlloc};
use crate::obj::inode::{extblock, Extent, Inode, INLINE_EXTENTS};
use crate::BLOCK_SIZE;

/// Writer bit of the per-file lock word.
const WRITER: u64 = 1 << 63;

/// Default lock-hold limit before a waiter presumes the holder crashed and
/// resets the lock (the lock word is volatile state; see module docs).
pub const DEFAULT_FILE_MAX_HOLD: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------------
// Probe accounting
// ---------------------------------------------------------------------------

/// Probe accounting for the data hot paths, mirroring [`crate::dir::DirStats`].
/// Counters are bumped with relaxed atomics and exist so the O(1) claim of
/// the extent cursor cache is *asserted* by tests and exported by the bench
/// harness (`paper datastats`), not eyeballed.
#[derive(Default)]
pub struct DataStats {
    /// `read_at` calls.
    pub reads: AtomicU64,
    /// `write_at` calls.
    pub writes: AtomicU64,
    /// Extents examined while locating / streaming a byte range. With a
    /// fresh cursor this is exactly the extents *touched* by the op; on the
    /// fallback path it also counts every extent skipped to reach `off`.
    pub walk_steps: AtomicU64,
    /// Full walks of the persistent extent map (cursor rebuilds plus every
    /// cursor-less fallback locate).
    pub map_walks: AtomicU64,
    /// Operations answered from a fresh cursor mirror.
    pub cursor_hits: AtomicU64,
    /// Cursor mirrors rebuilt from the persistent map (invalidation or
    /// first use).
    pub cursor_rebuilds: AtomicU64,
    /// Allocation growths (`ensure_allocated` calls that added blocks).
    pub appends: AtomicU64,
    /// Growths that extended the tail extent in place via `extend_at`.
    pub tail_extends: AtomicU64,
    /// Growths that (also) fell back to the general allocator.
    pub alloc_fallbacks: AtomicU64,
    /// General allocations served by a different segment than the thread's
    /// affinity hint asked for (contention-induced rehashing).
    pub seg_hops: AtomicU64,
}

impl DataStats {
    pub fn snapshot(&self) -> DataStatsSnapshot {
        let r = |c: &AtomicU64| c.load(Ordering::Relaxed);
        DataStatsSnapshot {
            reads: r(&self.reads),
            writes: r(&self.writes),
            walk_steps: r(&self.walk_steps),
            map_walks: r(&self.map_walks),
            cursor_hits: r(&self.cursor_hits),
            cursor_rebuilds: r(&self.cursor_rebuilds),
            appends: r(&self.appends),
            tail_extends: r(&self.tail_extends),
            alloc_fallbacks: r(&self.alloc_fallbacks),
            seg_hops: r(&self.seg_hops),
        }
    }
}

/// A point-in-time copy of [`DataStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataStatsSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub walk_steps: u64,
    pub map_walks: u64,
    pub cursor_hits: u64,
    pub cursor_rebuilds: u64,
    pub appends: u64,
    pub tail_extends: u64,
    pub alloc_fallbacks: u64,
    pub seg_hops: u64,
}

impl DataStatsSnapshot {
    /// Counter deltas since `base` (a snapshot taken earlier).
    pub fn since(&self, base: &DataStatsSnapshot) -> DataStatsSnapshot {
        DataStatsSnapshot {
            reads: self.reads - base.reads,
            writes: self.writes - base.writes,
            walk_steps: self.walk_steps - base.walk_steps,
            map_walks: self.map_walks - base.map_walks,
            cursor_hits: self.cursor_hits - base.cursor_hits,
            cursor_rebuilds: self.cursor_rebuilds - base.cursor_rebuilds,
            appends: self.appends - base.appends,
            tail_extends: self.tail_extends - base.tail_extends,
            alloc_fallbacks: self.alloc_fallbacks - base.alloc_fallbacks,
            seg_hops: self.seg_hops - base.seg_hops,
        }
    }

    /// Extents examined per read/write, averaged: the number the scaling
    /// tests pin down as O(1) — it must stay flat as files fragment.
    pub fn walk_steps_per_op(&self) -> f64 {
        let ops = self.reads + self.writes;
        if ops == 0 {
            return 0.0;
        }
        self.walk_steps as f64 / ops as f64
    }

    /// Fraction of allocation growths that extended the tail in place.
    pub fn tail_extend_rate(&self) -> f64 {
        if self.appends == 0 {
            return 0.0;
        }
        self.tail_extends as f64 / self.appends as f64
    }

    /// JSON object (hand-rolled: all fields are integers), for the bench
    /// harness's machine-readable stats export.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"reads\":{},\"writes\":{},\"walk_steps\":{},\"map_walks\":{},\
             \"cursor_hits\":{},\"cursor_rebuilds\":{},\"appends\":{},\
             \"tail_extends\":{},\"alloc_fallbacks\":{},\"seg_hops\":{}}}",
            self.reads,
            self.writes,
            self.walk_steps,
            self.map_walks,
            self.cursor_hits,
            self.cursor_rebuilds,
            self.appends,
            self.tail_extends,
            self.alloc_fallbacks,
            self.seg_hops,
        )
    }
}

// ---------------------------------------------------------------------------
// Extent cursor cache
// ---------------------------------------------------------------------------

/// Volatile DRAM mirror of one file's persistent extent map, shared by all
/// handles on that open file (hung off the sharded open state in `fs`).
///
/// Coherence rule: the mirror is only trusted when `inner.built_gen`
/// matches `gen`. Mutators that keep the mirror exact (`push_extent`)
/// update it in place under the write half of `inner`; mutators that
/// restructure the map (`truncate` shrink, `free_all`, O_TRUNC) bump `gen`
/// so every handle — including concurrent openers — rebuilds from the
/// persistent map on next use. A post-crash open starts from a fresh
/// cursor, so nothing volatile survives a crash.
#[derive(Default)]
pub struct FileCursor {
    gen: AtomicU64,
    inner: RwLock<CursorInner>,
}

#[derive(Default)]
struct CursorInner {
    valid: bool,
    built_gen: u64,
    /// `(logical_start, extent)`, sorted by logical start.
    map: Vec<(u64, Extent)>,
    /// Total allocated bytes (== logical end of the last extent).
    allocated: u64,
    /// Last block of the overflow chain, so `push_extent` skips the chain
    /// walk; `None` while the map fits the inline slots.
    tail_blk: Option<PPtr>,
}

impl FileCursor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks every handle's view stale; the next access rebuilds from the
    /// persistent map.
    pub fn invalidate(&self) {
        self.gen.fetch_add(1, Ordering::Release);
    }

    /// Runs `f` against a mirror guaranteed fresh at entry, rebuilding it
    /// first if a generation bump (or first use) made it stale.
    fn with_fresh<R>(&self, env: &FileEnv<'_>, ino: Inode, f: impl FnOnce(&CursorInner) -> R) -> R {
        let gen = self.gen.load(Ordering::Acquire);
        {
            let g = self.inner.read();
            if g.valid && g.built_gen == gen {
                env.bump(|s| &s.cursor_hits);
                return f(&g);
            }
        }
        let mut g = self.inner.write();
        // Re-check under the write half: another handle may have rebuilt.
        let gen = self.gen.load(Ordering::Acquire);
        if g.valid && g.built_gen == gen {
            env.bump(|s| &s.cursor_hits);
        } else {
            env.bump(|s| &s.cursor_rebuilds);
            env.bump(|s| &s.map_walks);
            g.rebuild(env.region, ino, gen);
        }
        f(&g)
    }
}

impl std::fmt::Debug for FileCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileCursor")
            .field("gen", &self.gen.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl CursorInner {
    fn rebuild(&mut self, r: &PmemRegion, ino: Inode, gen: u64) {
        self.map.clear();
        self.tail_blk = None;
        let mut logical = 0u64;
        let mut inline_full = true;
        for i in 0..INLINE_EXTENTS {
            let e = ino.extent(r, i);
            if e.is_empty() {
                inline_full = false;
                break;
            }
            self.map.push((logical, e));
            logical += e.len;
        }
        if inline_full {
            let mut blk = ino.ext_next(r);
            while !blk.is_null() {
                self.tail_blk = Some(blk);
                let n = extblock::count(r, blk);
                for i in 0..n {
                    let e = extblock::get(r, blk, i);
                    self.map.push((logical, e));
                    logical += e.len;
                }
                blk = extblock::next(r, blk);
            }
        }
        self.allocated = logical;
        self.built_gen = gen;
        self.valid = true;
    }
}

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

/// Context for data-path operations.
#[derive(Clone, Copy)]
pub struct FileEnv<'a> {
    pub region: &'a PmemRegion,
    pub blocks: &'a BlockAlloc,
    /// Skip the per-file write lock (paper's relaxed shared-file writes).
    pub relaxed: bool,
    pub max_hold: Duration,
    /// Optional probe accounting (see [`DataStats`]).
    pub stats: Option<&'a DataStats>,
    /// Optional extent mirror of the file being operated on.
    pub cursor: Option<&'a FileCursor>,
    /// Optional resource-fault injector (crash-matrix ENOSPC testing).
    pub faults: Option<&'a AllocFaults>,
}

impl<'a> FileEnv<'a> {
    pub fn new(region: &'a PmemRegion, blocks: &'a BlockAlloc) -> Self {
        FileEnv {
            region,
            blocks,
            relaxed: false,
            max_hold: DEFAULT_FILE_MAX_HOLD,
            stats: None,
            cursor: None,
            faults: None,
        }
    }

    /// Attaches probe accounting.
    pub fn with_stats(mut self, stats: &'a DataStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Attaches the mount's resource-fault injector.
    pub fn with_faults(mut self, faults: &'a AllocFaults) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Consults the fault injector (if any) before a block allocation.
    #[inline]
    fn check_fault(&self, site: &'static str) -> FsResult<()> {
        match self.faults {
            Some(f) => f.check(site),
            None => Ok(()),
        }
    }

    /// Attaches the open file's extent mirror.
    pub fn with_cursor(mut self, cursor: &'a FileCursor) -> Self {
        self.cursor = Some(cursor);
        self
    }

    #[inline]
    fn bump(&self, counter: impl Fn(&DataStats) -> &AtomicU64) {
        if let Some(s) = self.stats {
            counter(s).fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-file reader/writer lock
// ---------------------------------------------------------------------------

/// Shared-read guard on a file.
pub struct ReadGuard<'a> {
    region: &'a PmemRegion,
    lock: PPtr,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.region.atomic_u64(self.lock).fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exclusive-write guard on a file. `None` inside means relaxed mode.
pub struct WriteGuard<'a> {
    region: Option<&'a PmemRegion>,
    lock: PPtr,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        if let Some(r) = self.region {
            r.atomic_u64(self.lock).fetch_and(!WRITER, Ordering::AcqRel);
        }
    }
}

/// Acquires the shared side of a file's lock; a stuck writer is presumed
/// crashed after `max_hold` and its bit is cleared.
pub fn lock_read<'a>(env: &FileEnv<'a>, ino: Inode) -> ReadGuard<'a> {
    let lock = ino.lock_ptr();
    let a = env.region.atomic_u64(lock);
    let mut start = Instant::now();
    let mut backoff = Backoff::default();
    loop {
        let s = a.load(Ordering::Acquire);
        if s & WRITER == 0 {
            if a.compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                lock_stats().acquires.fetch_add(1, Ordering::Relaxed);
                return ReadGuard { region: env.region, lock };
            }
        } else if start.elapsed() > env.max_hold {
            // Crashed writer: clear *only* the writer bit. A blanket
            // store(0) would also wipe reader counts that raced in after
            // another waiter's reset, making their guards underflow on drop.
            crate::obs::trace(crate::obs::EventKind::BusyTimeout, lock.off(), s);
            a.fetch_and(!WRITER, Ordering::AcqRel);
            lock_stats().steals.fetch_add(1, Ordering::Relaxed);
            start = Instant::now();
        }
        backoff.wait();
    }
}

/// Acquires the exclusive side; no-op in relaxed mode.
pub fn lock_write<'a>(env: &FileEnv<'a>, ino: Inode) -> WriteGuard<'a> {
    let lock = ino.lock_ptr();
    if env.relaxed {
        return WriteGuard { region: None, lock };
    }
    let a = env.region.atomic_u64(lock);
    let mut start = Instant::now();
    let mut backoff = Backoff::default();
    loop {
        if a.compare_exchange_weak(0, WRITER, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            lock_stats().acquires.fetch_add(1, Ordering::Relaxed);
            return WriteGuard { region: Some(env.region), lock };
        }
        if start.elapsed() > env.max_hold {
            let s = a.load(Ordering::Acquire);
            if s & WRITER != 0 {
                // Crashed writer: clear only its bit (see lock_read) so
                // reader counts that raced in survive the steal.
                crate::obs::trace(crate::obs::EventKind::BusyTimeout, lock.off(), s);
                a.fetch_and(!WRITER, Ordering::AcqRel);
                lock_stats().steals.fetch_add(1, Ordering::Relaxed);
            } else if s != 0 {
                // Readers still pinned after a full extra grace period are
                // presumed crashed. CAS the exact observed count — never a
                // blind store — so a live reader arriving concurrently
                // keeps its slot and we simply retry.
                let _ = a.compare_exchange(s, 0, Ordering::AcqRel, Ordering::Acquire);
            }
            // Fresh grace period for whoever survived the reset.
            start = Instant::now();
        }
        backoff.wait();
    }
}

// ---------------------------------------------------------------------------
// Extent map
// ---------------------------------------------------------------------------

/// Calls `f(logical_start, extent)` for each extent in file order; returns
/// the total allocated bytes. This walks the persistent map — hot paths go
/// through the cursor mirror instead (`stream_extents`).
pub fn for_each_extent(r: &PmemRegion, ino: Inode, mut f: impl FnMut(u64, Extent)) -> u64 {
    let mut logical = 0u64;
    for i in 0..INLINE_EXTENTS {
        let e = ino.extent(r, i);
        if e.is_empty() {
            return logical;
        }
        f(logical, e);
        logical += e.len;
    }
    let mut blk = ino.ext_next(r);
    while !blk.is_null() {
        let n = extblock::count(r, blk);
        for i in 0..n {
            let e = extblock::get(r, blk, i);
            f(logical, e);
            logical += e.len;
        }
        blk = extblock::next(r, blk);
    }
    logical
}

/// Total allocated bytes of a file (multiple of the block size).
pub fn allocated_bytes(r: &PmemRegion, ino: Inode) -> u64 {
    for_each_extent(r, ino, |_, _| {})
}

/// Maps a logical offset to `(pmem address, contiguous bytes available)`.
/// One full walk of the persistent map: recovery/tooling only, never the
/// per-chunk locate of a hot loop.
pub fn map_offset(r: &PmemRegion, ino: Inode, off: u64) -> Option<(PPtr, u64)> {
    let mut found = None;
    for_each_extent(r, ino, |logical, e| {
        if found.is_none() && off >= logical && off < logical + e.len {
            let within = off - logical;
            found = Some((PPtr::new(e.start + within), e.len - within));
        }
    });
    found
}

/// Streams `(pmem address, contiguous bytes)` runs covering the file from
/// logical `off` onward, calling `f` for each run until it returns `false`
/// or the allocated range ends. The start extent is located **once**
/// (binary search in the cursor mirror when one is attached); subsequent
/// extents continue from there without re-walking the map.
fn stream_extents(env: &FileEnv<'_>, ino: Inode, off: u64, f: &mut impl FnMut(PPtr, u64) -> bool) {
    let r = env.region;
    if let Some(c) = env.cursor {
        for attempt in 0..2u32 {
            let cb = &mut *f;
            let covered = c.with_fresh(env, ino, |g| {
                if off >= g.allocated {
                    return false;
                }
                // First extent whose logical start is <= off.
                let idx = g.map.partition_point(|&(start, _)| start <= off) - 1;
                let mut pos = off;
                for &(start, e) in &g.map[idx..] {
                    env.bump(|s| &s.walk_steps);
                    let within = pos - start;
                    if !cb(PPtr::new(e.start + within), e.len - within) {
                        break;
                    }
                    pos = start + e.len;
                }
                true
            });
            if covered {
                return;
            }
            if attempt == 0 {
                // A relaxed-mode grower may have extended the map since the
                // mirror was built; rebuild once before concluding the
                // range is unallocated.
                c.invalidate();
            }
        }
        return;
    }
    // No cursor attached (symlinks, recovery, scaffolding): one manual walk
    // of the persistent map — a single walk per *call*, not per chunk, but
    // O(extents before `off`) in the locate step, which the counters show.
    env.bump(|s| &s.map_walks);
    let mut logical = 0u64;
    let mut pos = off;
    let mut visit = |e: Extent| {
        env.bump(|s| &s.walk_steps);
        let end = logical + e.len;
        if pos < end {
            let within = pos - logical;
            if !f(PPtr::new(e.start + within), e.len - within) {
                return false;
            }
            pos = end;
        }
        logical = end;
        true
    };
    for i in 0..INLINE_EXTENTS {
        let e = ino.extent(r, i);
        if e.is_empty() {
            return;
        }
        if !visit(e) {
            return;
        }
    }
    let mut blk = ino.ext_next(r);
    while !blk.is_null() {
        let n = extblock::count(r, blk);
        for i in 0..n {
            if !visit(extblock::get(r, blk, i)) {
                return;
            }
        }
        blk = extblock::next(r, blk);
    }
}

/// `(allocated bytes, physical end of the tail extent)` — from the cursor
/// mirror when attached, else one walk of the persistent map.
fn allocation_info(env: &FileEnv<'_>, ino: Inode) -> (u64, Option<PPtr>) {
    if let Some(c) = env.cursor {
        return c.with_fresh(env, ino, |g| {
            (g.allocated, g.map.last().map(|&(_, e)| PPtr::new(e.start + e.len)))
        });
    }
    env.bump(|s| &s.map_walks);
    let mut tail = None;
    let allocated = for_each_extent(env.region, ino, |_, e| {
        env.bump(|s| &s.walk_steps);
        tail = Some(PPtr::new(e.start + e.len));
    });
    (allocated, tail)
}

/// Tail block of the overflow chain per the (fresh) mirror, so `push_extent`
/// skips the chain walk. `None` means walk from the head.
fn cursor_tail_blk(env: &FileEnv<'_>) -> Option<PPtr> {
    let c = env.cursor?;
    let gen = c.gen.load(Ordering::Acquire);
    let g = c.inner.read();
    if g.valid && g.built_gen == gen {
        g.tail_blk
    } else {
        None
    }
}

/// Mirrors a successful `push_extent` into the cursor, keeping it fresh
/// without a rebuild. `merged` means the tail extent grew in place;
/// `chain_blk` is the overflow block written (None for inline slots).
fn cursor_note_push(env: &FileEnv<'_>, merged: bool, chain_blk: Option<PPtr>, e: Extent) {
    let Some(c) = env.cursor else { return };
    let gen = c.gen.load(Ordering::Acquire);
    let mut g = c.inner.write();
    if !g.valid || g.built_gen != gen {
        return; // stale mirror: the next reader rebuilds anyway
    }
    if merged {
        let last = g.map.last_mut().expect("merged push implies a tail extent");
        last.1.len += e.len;
    } else {
        let logical = g.allocated;
        g.map.push((logical, e));
    }
    g.allocated += e.len;
    if chain_blk.is_some() {
        g.tail_blk = chain_blk;
    }
}

/// Appends an extent to the file's map, merging with the physical tail when
/// contiguous. Allocates an overflow extent block on demand. Keeps the
/// cursor mirror fresh in place.
fn push_extent(env: &FileEnv<'_>, ino: Inode, e: Extent) -> FsResult<()> {
    let r = env.region;
    // Inline slots first.
    for i in 0..INLINE_EXTENTS {
        let cur = ino.extent(r, i);
        if cur.is_empty() {
            ino.set_extent(r, i, e);
            cursor_note_push(env, false, None, e);
            return Ok(());
        }
        if cur.start + cur.len == e.start {
            let last_inline = i + 1 == INLINE_EXTENTS || ino.extent(r, i + 1).is_empty();
            let overflow_empty = ino.ext_next(r).is_null();
            if last_inline && overflow_empty {
                ino.set_extent(r, i, Extent { start: cur.start, len: cur.len + e.len });
                cursor_note_push(env, true, None, e);
                return Ok(());
            }
        }
    }
    // Overflow chain: start from the mirrored tail block when fresh, else
    // walk from the head (cold path).
    let mut blk = match cursor_tail_blk(env) {
        Some(tail) => tail,
        None => ino.ext_next(r),
    };
    if blk.is_null() {
        env.check_fault("extent-block-alloc")?;
        let nb = env.blocks.alloc(ino.ptr().off() / 64, 1).ok_or(FsError::NoSpace)?;
        extblock::init(r, nb);
        ino.set_ext_next(r, nb);
        blk = nb;
    }
    loop {
        let n = extblock::count(r, blk);
        if n > 0 {
            let last = extblock::get(r, blk, n - 1);
            if last.start + last.len == e.start && extblock::next(r, blk).is_null() {
                extblock::set_len(r, blk, n - 1, last.len + e.len);
                cursor_note_push(env, true, Some(blk), e);
                return Ok(());
            }
        }
        if extblock::push(r, blk, e) {
            cursor_note_push(env, false, Some(blk), e);
            return Ok(());
        }
        let next = extblock::next(r, blk);
        if next.is_null() {
            env.check_fault("extent-block-alloc")?;
            let nb = env.blocks.alloc(ino.ptr().off() / 64, 1).ok_or(FsError::NoSpace)?;
            extblock::init(r, nb);
            extblock::set_next(r, blk, nb);
            blk = nb;
        } else {
            blk = next;
        }
    }
}

thread_local! {
    /// Segment this thread last allocated from (`u64::MAX` = unset).
    /// Appenders keep returning to "their" segment instead of rehashing
    /// into whatever segment the inode pointer happens to select, which
    /// under concurrency means contending with every other appender.
    static SEG_AFFINITY: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// General allocation with the per-thread segment-affinity hint.
fn alloc_affine(env: &FileEnv<'_>, ino: Inode, count: u64) -> Option<PPtr> {
    let hint = match SEG_AFFINITY.get() {
        u64::MAX => ino.ptr().off() / 64,
        h => h,
    };
    let p = env.blocks.alloc(hint, count)?;
    let seg = env.blocks.seg_of_ptr(p) as u64;
    if seg != hint % env.blocks.segments() as u64 {
        env.bump(|s| &s.seg_hops);
    }
    SEG_AFFINITY.set(seg);
    Some(p)
}

/// Grows the allocation to at least `want` bytes (block-granular). Newly
/// allocated space is *not* zeroed here; writers zero holes they skip.
///
/// Append fast path: the blocks physically following the tail extent are
/// claimed first (`extend_at`), which merges into the tail instead of
/// adding a map entry; only the remainder, if any, goes through the
/// general allocator.
pub fn ensure_allocated(env: &FileEnv<'_>, ino: Inode, want: u64) -> FsResult<()> {
    let (have, tail_end) = allocation_info(env, ino);
    if want <= have {
        return Ok(());
    }
    env.bump(|s| &s.appends);
    let mut need_blocks = (want - have).div_ceil(BLOCK_SIZE as u64);
    if let Some(end) = tail_end {
        env.check_fault("tail-extend")?;
        let got = env.blocks.extend_at(env.blocks.ptr_block(end), need_blocks);
        if got > 0 {
            env.bump(|s| &s.tail_extends);
            push_extent(env, ino, Extent { start: end.off(), len: got * BLOCK_SIZE as u64 })?;
            need_blocks -= got;
        }
    }
    if need_blocks == 0 {
        return Ok(());
    }
    env.bump(|s| &s.alloc_fallbacks);
    // Allocate in as few contiguous chunks as the allocator can provide:
    // try the whole run first, halve on failure.
    while need_blocks > 0 {
        env.check_fault("data-block-alloc")?;
        let mut chunk = need_blocks;
        let ptr = loop {
            match alloc_affine(env, ino, chunk) {
                Some(p) => break Some(p),
                None if chunk > 1 => chunk = chunk.div_ceil(2),
                None => break None,
            }
        };
        let Some(p) = ptr else {
            return Err(FsError::NoSpace);
        };
        push_extent(env, ino, Extent { start: p.off(), len: chunk * BLOCK_SIZE as u64 })?;
        need_blocks -= chunk;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Read / write / truncate
// ---------------------------------------------------------------------------

/// Reads up to `buf.len()` bytes at `off`; returns bytes read (0 at EOF).
/// Caller holds the read lock.
pub fn read_at(env: &FileEnv<'_>, ino: Inode, off: u64, buf: &mut [u8]) -> usize {
    env.bump(|s| &s.reads);
    let size = ino.size(env.region);
    if off >= size || buf.is_empty() {
        return 0;
    }
    let want = buf.len().min((size - off) as usize);
    let mut done = 0usize;
    stream_extents(env, ino, off, &mut |addr, avail| {
        let n = (want - done).min(avail as usize);
        env.region.read_into(addr, &mut buf[done..done + n]);
        done += n;
        done < want
    });
    done
}

/// Writes `data` at `off`, extending allocation and size as needed; returns
/// bytes written. Caller holds the write lock (or runs relaxed).
pub fn write_at(env: &FileEnv<'_>, ino: Inode, off: u64, data: &[u8]) -> FsResult<usize> {
    env.bump(|s| &s.writes);
    let r = env.region;
    let end = off + data.len() as u64;
    // Group commit: extent-map persists from the allocation growth coalesce
    // into the data fence below — they only need to be durable before the
    // size update, exactly like the payload itself.
    let scope = r.fence_scope();
    ensure_allocated(env, ino, end)?;
    let old_size = ino.size(r);
    // Zero any hole between the current end and the write start.
    if off > old_size {
        zero_range(env, ino, old_size, off - old_size);
    }
    // Non-temporal copy of the payload, streaming extent to extent.
    let mut done = 0usize;
    stream_extents(env, ino, off, &mut |addr, avail| {
        let n = (data.len() - done).min(avail as usize);
        r.nt_write_from(addr, &data[done..done + n]);
        done += n;
        done < data.len()
    });
    if done < data.len() {
        return Err(FsError::Corrupt("write past allocation"));
    }
    // sfence: data + extent map durable before the size update (paper
    // ordering). The commit is the one fence of the whole growth path.
    scope.commit();
    drop(scope);
    if end > old_size {
        ino.set_size(r, end);
    }
    Ok(data.len())
}

fn zero_range(env: &FileEnv<'_>, ino: Inode, off: u64, len: u64) {
    const ZEROS: [u8; BLOCK_SIZE] = [0u8; BLOCK_SIZE];
    let mut done = 0u64;
    stream_extents(env, ino, off, &mut |addr, avail| {
        let run = avail.min(len - done);
        let mut within = 0u64;
        while within < run {
            let n = (run - within).min(BLOCK_SIZE as u64);
            env.region.nt_write_from(addr.add(within), &ZEROS[..n as usize]);
            within += n;
        }
        done += run;
        done < len
    });
}

/// Preallocates `[off, off+len)` without zeroing (FxMark DWTL). Extends the
/// size like `fallocate(2)` without `KEEP_SIZE`.
pub fn fallocate(env: &FileEnv<'_>, ino: Inode, off: u64, len: u64) -> FsResult<()> {
    let end = off + len;
    ensure_allocated(env, ino, end)?;
    if end > ino.size(env.region) {
        ino.set_size(env.region, end);
    }
    Ok(())
}

/// Truncates to `len`: shrinking frees whole blocks beyond the new end;
/// growing allocates and zero-fills.
pub fn truncate(env: &FileEnv<'_>, ino: Inode, len: u64) -> FsResult<()> {
    let r = env.region;
    let old = ino.size(r);
    if len > old {
        // Group commit: extent-map persists coalesce into the fence that
        // orders the zero-fill before the size update.
        let scope = r.fence_scope();
        ensure_allocated(env, ino, len)?;
        zero_range(env, ino, old, len - old);
        scope.commit();
        drop(scope);
        ino.set_size(r, len);
        return Ok(());
    }
    ino.set_size(r, len);
    // The trimmed size must be durable *before* any block is freed: a crash
    // between the two must never expose reusable blocks under a stale
    // larger size. set_size persists its own line; the fence below also
    // orders it against the map rewrite that follows.
    r.fence();
    shrink_allocation(env, ino, len);
    Ok(())
}

/// Frees every whole block past `keep` bytes and trims the extent map.
///
/// The trimmed map is rewritten **in place** (inline slots, then the
/// existing overflow blocks — shrinking never needs new space), persisted,
/// and only then are the surplus data and chain blocks released. A crash
/// anywhere in between leaks blocks at worst; it never leaves the map
/// pointing at freed ones.
fn shrink_allocation(env: &FileEnv<'_>, ino: Inode, keep: u64) {
    if let Some(c) = env.cursor {
        c.invalidate();
    }
    let r = env.region;
    let keep_alloc = keep.div_ceil(BLOCK_SIZE as u64) * BLOCK_SIZE as u64;
    // Snapshot the current map and overflow chain.
    let mut map: Vec<Extent> = Vec::new();
    for_each_extent(r, ino, |_, e| map.push(e));
    let mut chain: Vec<PPtr> = Vec::new();
    let mut blk = ino.ext_next(r);
    while !blk.is_null() {
        chain.push(blk);
        blk = extblock::next(r, blk);
    }
    // Split into the trimmed map and the block runs to release.
    let mut kept: Vec<Extent> = Vec::new();
    let mut frees: Vec<(PPtr, u64)> = Vec::new();
    let mut logical = 0u64;
    for e in &map {
        if logical + e.len <= keep_alloc {
            kept.push(*e);
        } else if logical < keep_alloc {
            let keep_len = keep_alloc - logical;
            kept.push(Extent { start: e.start, len: keep_len });
            frees.push((PPtr::new(e.start + keep_len), (e.len - keep_len) / BLOCK_SIZE as u64));
        } else {
            frees.push((PPtr::new(e.start), e.len / BLOCK_SIZE as u64));
        }
        logical += e.len;
    }
    // Rewrite the trimmed map in place, coalescing the per-slot persists
    // into the single commit below.
    let scope = r.fence_scope();
    for i in 0..INLINE_EXTENTS {
        ino.set_extent(r, i, kept.get(i).copied().unwrap_or_default());
    }
    let mut rest = &kept[kept.len().min(INLINE_EXTENTS)..];
    let mut used = 0usize;
    while !rest.is_empty() {
        let n = rest.len().min(extblock::CAPACITY);
        let next = if rest.len() > n { chain[used + 1] } else { PPtr::NULL };
        extblock::rewrite(r, chain[used], &rest[..n], next);
        rest = &rest[n..];
        used += 1;
    }
    if used == 0 {
        ino.set_ext_next(r, PPtr::NULL);
    }
    // Trimmed map durable; only now do the surplus blocks go back.
    scope.commit();
    drop(scope);
    for b in &chain[used..] {
        env.blocks.free(*b, 1);
    }
    for (p, n) in frees {
        if n > 0 {
            env.blocks.free(p, n);
        }
    }
}

/// Frees all data and extent blocks of a file (unlink of the last link).
pub fn free_all(env: &FileEnv<'_>, ino: Inode) {
    if let Some(c) = env.cursor {
        c.invalidate();
    }
    let r = env.region;
    let mut map: Vec<Extent> = Vec::new();
    for_each_extent(r, ino, |_, e| map.push(e));
    for e in map {
        env.blocks.free(PPtr::new(e.start), e.len / BLOCK_SIZE as u64);
    }
    let mut blk = ino.ext_next(r);
    while !blk.is_null() {
        let next = extblock::next(r, blk);
        env.blocks.free(blk, 1);
        blk = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::inode::INODE_SIZE;
    use simurgh_fsapi::types::FileMode;
    use simurgh_pmem::layout::Extent as LExtent;
    use std::sync::Arc;

    struct Fx {
        region: Arc<PmemRegion>,
        blocks: Arc<BlockAlloc>,
        stats: DataStats,
        cursor: FileCursor,
    }

    impl Fx {
        fn new(bytes: usize) -> Self {
            let region = Arc::new(PmemRegion::new(bytes));
            let data = LExtent { start: PPtr::new(64 * 1024), len: bytes as u64 - 64 * 1024 };
            let blocks = Arc::new(BlockAlloc::new(data, 2));
            Fx { region, blocks, stats: DataStats::default(), cursor: FileCursor::new() }
        }

        fn env(&self) -> FileEnv<'_> {
            FileEnv::new(&self.region, &self.blocks)
        }

        /// Env with the cursor mirror and probe counters attached, the way
        /// the file system drives the data path for open files.
        fn env_cached(&self) -> FileEnv<'_> {
            self.env().with_stats(&self.stats).with_cursor(&self.cursor)
        }

        fn inode(&self) -> Inode {
            let ino = Inode(PPtr::new(4096));
            ino.init(&self.region, FileMode::file(0o644), 0, 0, 1, 0);
            ino
        }

        /// Writes `n` 4-KB chunks, claiming the block physically after the
        /// tail between writes so the append fast path can never extend in
        /// place: a file with exactly `n` extents.
        fn fragmented(&self, env: &FileEnv<'_>, ino: Inode, n: u64) {
            for i in 0..n {
                write_at(env, ino, i * 4096, &[i as u8; 4096]).unwrap();
                let mut tail = 0u64;
                for_each_extent(&self.region, ino, |_, e| tail = e.start + e.len);
                let b = self.blocks.ptr_block(PPtr::new(tail));
                // Claim may find the block already taken (e.g. by a chain
                // block) — equally good: tail extension stays impossible.
                let _ = self.blocks.extend_at(b, 1);
            }
            let mut extents = 0u64;
            for_each_extent(&self.region, ino, |_, _| extents += 1);
            assert_eq!(extents, n, "guards kept every chunk a separate extent");
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let data = b"the quick brown fox";
        assert_eq!(write_at(&env, ino, 0, data).unwrap(), data.len());
        assert_eq!(ino.size(&fx.region), data.len() as u64);
        let mut buf = vec![0u8; 64];
        let n = read_at(&env, ino, 0, &mut buf);
        assert_eq!(&buf[..n], data);
    }

    #[test]
    fn sparse_write_zero_fills_hole() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        write_at(&env, ino, 0, b"head").unwrap();
        write_at(&env, ino, 10_000, b"tail").unwrap();
        assert_eq!(ino.size(&fx.region), 10_004);
        let mut buf = vec![0xffu8; 10_004];
        assert_eq!(read_at(&env, ino, 0, &mut buf), 10_004);
        assert_eq!(&buf[..4], b"head");
        assert!(buf[4..10_000].iter().all(|&b| b == 0), "hole reads as zeros");
        assert_eq!(&buf[10_000..], b"tail");
    }

    #[test]
    fn appends_grow_and_merge_extents() {
        let fx = Fx::new(32 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let chunk = vec![7u8; 4096];
        for i in 0..100u64 {
            write_at(&env, ino, i * 4096, &chunk).unwrap();
        }
        assert_eq!(ino.size(&fx.region), 100 * 4096);
        let mut n_extents = 0;
        for_each_extent(&fx.region, ino, |_, _| n_extents += 1);
        assert!(n_extents <= 10, "contiguous appends merge ({n_extents} extents)");
        let mut buf = vec![0u8; 4096];
        assert_eq!(read_at(&env, ino, 99 * 4096, &mut buf), 4096);
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn append_fast_path_extends_tail_in_place() {
        let fx = Fx::new(32 << 20);
        let env = fx.env_cached();
        let ino = fx.inode();
        let chunk = vec![5u8; 4096];
        for i in 0..64u64 {
            write_at(&env, ino, i * 4096, &chunk).unwrap();
        }
        let d = fx.stats.snapshot();
        assert_eq!(d.appends, 64, "every chunk grew the allocation");
        // Only the first append (empty file, no tail) may miss.
        assert!(
            d.tail_extend_rate() >= 0.9,
            "contiguous single-thread appends extend in place (rate {})",
            d.tail_extend_rate()
        );
        let mut n_extents = 0;
        for_each_extent(&fx.region, ino, |_, _| n_extents += 1);
        assert_eq!(n_extents, 1, "tail extension never adds a map entry");
        let mut buf = vec![0u8; 4096];
        assert_eq!(read_at(&env, ino, 63 * 4096, &mut buf), 4096);
        assert!(buf.iter().all(|&b| b == 5));
    }

    #[test]
    fn cursor_makes_reads_single_step() {
        let fx = Fx::new(32 << 20);
        let env = fx.env_cached();
        let ino = fx.inode();
        fx.fragmented(&env, ino, 8);
        let base = fx.stats.snapshot();
        for i in 0..8u64 {
            let mut buf = [0u8; 4096];
            assert_eq!(read_at(&env, ino, i * 4096, &mut buf), 4096);
            assert!(buf.iter().all(|&b| b == i as u8), "extent {i} intact");
        }
        let d = fx.stats.snapshot().since(&base);
        assert_eq!(d.reads, 8);
        assert_eq!(d.walk_steps, 8, "one extent examined per read, at any offset");
        assert_eq!(d.cursor_rebuilds, 0, "mirror stayed fresh across the appends");
        assert_eq!(d.map_walks, 0, "no persistent-map walk on the hot path");
        assert!(d.cursor_hits >= 8);
    }

    #[test]
    fn uncursored_reads_walk_the_map() {
        // Contrast case proving the counters measure what they claim: with
        // no mirror, locating a tail offset examines every earlier extent.
        let fx = Fx::new(32 << 20);
        let env = fx.env().with_stats(&fx.stats);
        let ino = fx.inode();
        fx.fragmented(&env, ino, 8);
        let base = fx.stats.snapshot();
        let mut buf = [0u8; 4096];
        assert_eq!(read_at(&env, ino, 7 * 4096, &mut buf), 4096);
        let d = fx.stats.snapshot().since(&base);
        assert_eq!(d.walk_steps, 8, "fallback walk visits all 8 extents");
        assert_eq!(d.map_walks, 1);
        assert_eq!(d.cursor_hits + d.cursor_rebuilds, 0);
    }

    #[test]
    fn cursor_invalidated_by_truncate_then_rebuilds() {
        let fx = Fx::new(32 << 20);
        let env = fx.env_cached();
        let ino = fx.inode();
        fx.fragmented(&env, ino, 6);
        truncate(&env, ino, 2 * 4096 + 10).unwrap();
        let base = fx.stats.snapshot();
        let mut buf = [0u8; 4096];
        assert_eq!(read_at(&env, ino, 4096, &mut buf), 4096);
        assert!(buf.iter().all(|&b| b == 1), "surviving extent intact after rebuild");
        let d = fx.stats.snapshot().since(&base);
        assert_eq!(d.cursor_rebuilds, 1, "generation bump forced one rebuild");
        assert_eq!(read_at(&env, ino, 2 * 4096, &mut buf), 10, "size trimmed");
    }

    #[test]
    fn large_file_uses_overflow_extents() {
        let fx = Fx::new(64 << 20);
        let env = fx.env();
        let ino = fx.inode();
        // Force fragmentation: allocate a guard block between writes so
        // extents cannot merge.
        for i in 0..8u64 {
            write_at(&env, ino, i * 4096, &[i as u8; 4096]).unwrap();
            let _guard = fx.blocks.alloc(i, 1).unwrap();
        }
        let mut n = 0;
        for_each_extent(&fx.region, ino, |_, _| n += 1);
        assert!(n > INLINE_EXTENTS, "spilled to overflow chain");
        assert!(!ino.ext_next(&fx.region).is_null());
        for i in 0..8u64 {
            let mut buf = [0u8; 4096];
            assert_eq!(read_at(&env, ino, i * 4096, &mut buf), 4096);
            assert!(buf.iter().all(|&b| b == i as u8), "extent {i} intact");
        }
    }

    #[test]
    fn read_past_eof_is_empty() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        write_at(&env, ino, 0, b"xy").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(read_at(&env, ino, 2, &mut buf), 0);
        assert_eq!(read_at(&env, ino, 100, &mut buf), 0);
        assert_eq!(read_at(&env, ino, 0, &mut buf), 2, "short read at boundary");
    }

    #[test]
    fn fallocate_reserves_without_zeroing() {
        let fx = Fx::new(32 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let before = fx.blocks.free_blocks();
        fallocate(&env, ino, 0, 4 << 20).unwrap();
        assert_eq!(ino.size(&fx.region), 4 << 20);
        assert_eq!(before - fx.blocks.free_blocks(), (4 << 20) / 4096);
    }

    #[test]
    fn truncate_shrinks_and_frees() {
        let fx = Fx::new(16 << 20);
        let env = fx.env();
        let ino = fx.inode();
        write_at(&env, ino, 0, &vec![1u8; 1 << 20]).unwrap();
        let after_write = fx.blocks.free_blocks();
        truncate(&env, ino, 4096).unwrap();
        assert_eq!(ino.size(&fx.region), 4096);
        assert!(fx.blocks.free_blocks() > after_write, "blocks returned");
        let mut buf = [0u8; 4096];
        assert_eq!(read_at(&env, ino, 0, &mut buf), 4096);
        assert!(buf.iter().all(|&b| b == 1));
    }

    #[test]
    fn truncate_shrink_preserves_overflow_chain_prefix() {
        // A 12-extent file spills into the overflow chain; truncating to
        // five extents must keep the first five intact (the in-place chain
        // rewrite path) and free the rest.
        let fx = Fx::new(64 << 20);
        let env = fx.env_cached();
        let ino = fx.inode();
        fx.fragmented(&env, ino, 12);
        let free_before = fx.blocks.free_blocks();
        truncate(&env, ino, 5 * 4096).unwrap();
        assert!(fx.blocks.free_blocks() > free_before, "surplus data blocks freed");
        let mut n = 0;
        for_each_extent(&fx.region, ino, |_, _| n += 1);
        assert_eq!(n, 5);
        for i in 0..5u64 {
            let mut buf = [0u8; 4096];
            assert_eq!(read_at(&env, ino, i * 4096, &mut buf), 4096);
            assert!(buf.iter().all(|&b| b == i as u8), "extent {i} survived the rewrite");
        }
    }

    #[test]
    fn truncate_grow_zero_fills() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        write_at(&env, ino, 0, b"abc").unwrap();
        truncate(&env, ino, 10_000).unwrap();
        assert_eq!(ino.size(&fx.region), 10_000);
        let mut buf = vec![0xffu8; 10_000];
        assert_eq!(read_at(&env, ino, 0, &mut buf), 10_000);
        assert_eq!(&buf[..3], b"abc");
        assert!(buf[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn free_all_returns_every_block() {
        let fx = Fx::new(16 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let before = fx.blocks.free_blocks();
        write_at(&env, ino, 0, &vec![9u8; 2 << 20]).unwrap();
        assert!(fx.blocks.free_blocks() < before);
        free_all(&env, ino);
        assert_eq!(fx.blocks.free_blocks(), before);
    }

    #[test]
    fn rw_lock_excludes_writers() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let g = lock_write(&env, ino);
        // A reader in another thread must not get in while the writer holds.
        let held = std::sync::atomic::AtomicBool::new(true);
        crossbeam::thread::scope(|s| {
            s.spawn(|_| {
                let env2 = fx.env();
                let _r = lock_read(&env2, ino);
                assert!(!held.load(Ordering::SeqCst), "reader entered while writer held");
            });
            std::thread::sleep(Duration::from_millis(20));
            held.store(false, Ordering::SeqCst);
            drop(g);
        })
        .unwrap();
    }

    #[test]
    fn readers_are_concurrent() {
        let fx = Fx::new(8 << 20);
        let env = fx.env();
        let ino = fx.inode();
        let r1 = lock_read(&env, ino);
        let r2 = lock_read(&env, ino);
        assert_eq!(fx.region.atomic_u64(ino.lock_ptr()).load(Ordering::SeqCst), 2);
        drop(r1);
        drop(r2);
        assert_eq!(fx.region.atomic_u64(ino.lock_ptr()).load(Ordering::SeqCst), 0);
    }

    #[test]
    fn crashed_writer_lock_is_reset() {
        let fx = Fx::new(8 << 20);
        let mut env = fx.env();
        env.max_hold = Duration::from_millis(10);
        let ino = fx.inode();
        // Simulate a crashed writer: set the writer bit by hand.
        fx.region.atomic_u64(ino.lock_ptr()).store(WRITER, Ordering::SeqCst);
        let start = Instant::now();
        let g = lock_read(&env, ino);
        assert!(start.elapsed() >= Duration::from_millis(10));
        drop(g);
    }

    #[test]
    fn crashed_writer_reset_preserves_raced_reader_counts() {
        // Regression: the old reset did `store(0)`, wiping reader counts
        // that raced in after another waiter already cleared the writer
        // bit. The steal must clear *only* the writer bit.
        let fx = Fx::new(8 << 20);
        let mut env = fx.env();
        env.max_hold = Duration::from_millis(5);
        let ino = fx.inode();
        let a = fx.region.atomic_u64(ino.lock_ptr());
        // Crashed writer plus two readers that raced in around a reset.
        a.store(WRITER | 2, Ordering::SeqCst);
        let g = lock_read(&env, ino);
        assert_eq!(a.load(Ordering::SeqCst), 3, "both raced-in readers kept their counts");
        drop(g);
        assert_eq!(a.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_readers_survive_writer_steal() {
        let fx = Fx::new(8 << 20);
        let ino = fx.inode();
        let a = fx.region.atomic_u64(ino.lock_ptr());
        a.store(WRITER, Ordering::SeqCst); // crashed writer
        let barrier = std::sync::Barrier::new(5);
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let mut env = fx.env();
                    env.max_hold = Duration::from_millis(5);
                    barrier.wait();
                    let g = lock_read(&env, ino);
                    barrier.wait(); // all four hold
                    barrier.wait(); // main has asserted
                    drop(g);
                });
            }
            barrier.wait(); // start together
            barrier.wait(); // every reader acquired
            let w = a.load(Ordering::SeqCst);
            assert_eq!(w, 4, "steal cleared only the writer bit (word {w:#x})");
            barrier.wait(); // release
        })
        .unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn crashed_readers_do_not_hang_writers() {
        let fx = Fx::new(8 << 20);
        let mut env = fx.env();
        env.max_hold = Duration::from_millis(5);
        let ino = fx.inode();
        let a = fx.region.atomic_u64(ino.lock_ptr());
        a.store(3, Ordering::SeqCst); // three dead readers
        let g = lock_write(&env, ino);
        assert_eq!(a.load(Ordering::SeqCst), WRITER);
        drop(g);
        assert_eq!(a.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn write_steal_clears_writer_bit_before_reader_counts() {
        // Escalation order: a write waiter first clears a dead writer's
        // bit, then gives remaining readers a *fresh* grace period before
        // presuming them dead too — two hold periods minimum, so readers
        // that raced in behind the first steal are not clobbered instantly.
        let fx = Fx::new(8 << 20);
        let mut env = fx.env();
        env.max_hold = Duration::from_millis(5);
        let ino = fx.inode();
        let a = fx.region.atomic_u64(ino.lock_ptr());
        a.store(WRITER | 2, Ordering::SeqCst);
        let t0 = Instant::now();
        let g = lock_write(&env, ino);
        assert!(t0.elapsed() >= Duration::from_millis(10), "two grace periods elapsed");
        assert_eq!(a.load(Ordering::SeqCst), WRITER);
        drop(g);
    }

    #[test]
    fn relaxed_mode_skips_write_lock() {
        let fx = Fx::new(8 << 20);
        let mut env = fx.env();
        env.relaxed = true;
        let ino = fx.inode();
        let g1 = lock_write(&env, ino);
        let g2 = lock_write(&env, ino); // would deadlock if not relaxed
        drop(g1);
        drop(g2);
    }

    #[test]
    fn inode_size_constant_holds() {
        // The lock word and extent map must fit the fixed object.
        assert_eq!(INODE_SIZE, 128);
    }

    #[test]
    fn data_persists_before_size_metadata() {
        // In tracked mode: after write_at returns, a crash must preserve
        // both data and size (fence-then-size ordering).
        let region = Arc::new(PmemRegion::new_tracked(4 << 20));
        let data_ext = LExtent { start: PPtr::new(64 * 1024), len: (4 << 20) - 64 * 1024 };
        let blocks = Arc::new(BlockAlloc::new(data_ext, 1));
        let env = FileEnv::new(&region, &blocks);
        let ino = Inode(PPtr::new(4096));
        ino.init(&region, FileMode::file(0o644), 0, 0, 1, 0);
        region.persist(PPtr::new(4096), 128);
        write_at(&env, ino, 0, b"durable payload").unwrap();
        let crashed = region.simulate_crash();
        let ino2 = Inode(PPtr::new(4096));
        assert_eq!(ino2.size(&crashed), 15);
        let blocks2 = Arc::new(BlockAlloc::new(data_ext, 1));
        let env2 = FileEnv::new(&crashed, &blocks2);
        let mut buf = [0u8; 15];
        assert_eq!(read_at(&env2, ino2, 0, &mut buf), 15);
        assert_eq!(&buf, b"durable payload");
    }

    #[test]
    fn truncate_shrink_crash_keeps_size_and_surviving_data() {
        // Tracked-region coverage for the shrink ordering: after truncate
        // returns, a crash must see the trimmed size, the trimmed map, and
        // the kept prefix — never a larger size over freed blocks.
        let region = Arc::new(PmemRegion::new_tracked(4 << 20));
        let data_ext = LExtent { start: PPtr::new(64 * 1024), len: (4 << 20) - 64 * 1024 };
        let blocks = Arc::new(BlockAlloc::new(data_ext, 1));
        let env = FileEnv::new(&region, &blocks);
        let ino = Inode(PPtr::new(4096));
        ino.init(&region, FileMode::file(0o644), 0, 0, 1, 0);
        region.persist(PPtr::new(4096), 128);
        write_at(&env, ino, 0, &vec![0xabu8; 64 * 1024]).unwrap();
        truncate(&env, ino, 4096).unwrap();
        let crashed = region.simulate_crash();
        let ino2 = Inode(PPtr::new(4096));
        assert_eq!(ino2.size(&crashed), 4096, "trimmed size durable");
        assert_eq!(allocated_bytes(&crashed, ino2), 4096, "trimmed map durable");
        let blocks2 = Arc::new(BlockAlloc::new(data_ext, 1));
        let env2 = FileEnv::new(&crashed, &blocks2);
        let mut buf = [0u8; 4096];
        assert_eq!(read_at(&env2, ino2, 0, &mut buf), 4096);
        assert!(buf.iter().all(|&b| b == 0xab), "kept prefix intact");
    }
}
