//! Exercises the shared-DRAM index code paths of the directory module
//! explicitly: hits, authoritative misses, stale-hint verification, free
//! hints, tail hints, and index state across repairs and reindexing.

use std::sync::Arc;
use std::time::Duration;

use simurgh_core::dindex::IndexHit;
use simurgh_core::hash::fnv1a;
use simurgh_core::obj;
use simurgh_core::{dir, SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, FileType, ProcCtx};
use simurgh_pmem::{PPtr, PmemRegion};

const CTX: ProcCtx = ProcCtx::root(1);

fn fs() -> SimurghFs {
    SimurghFs::format(Arc::new(PmemRegion::new(64 << 20)), SimurghConfig::default()).unwrap()
}

/// Index lookup by name: the index is keyed by `(line, nhash)`, both derived
/// from the name the same way the directory module derives them.
fn hit(ix: &simurgh_core::dindex::DirIndex, dirp: PPtr, name: &str) -> IndexHit {
    let nhash = fnv1a(name.as_bytes());
    ix.lookup(dirp, (nhash % 256) as usize, nhash)
}

#[test]
fn fresh_directories_answer_misses_authoritatively() {
    let fs = fs();
    fs.mkdir(&CTX, "/d", FileMode::dir(0o755)).unwrap();
    // A lookup of a missing name in a complete directory is a fast miss —
    // observable through the index directly.
    let (_, first) = fs.testing_dir_block("/d").unwrap();
    let env = fs.testing_dir_env();
    let ix = env.index.expect("mounted fs always has an index");
    assert!(ix.is_complete(first.ptr()));
    assert_eq!(hit(ix, first.ptr(), "missing"), IndexHit::AbsentForSure);
    assert!(dir::lookup(&env, first, "missing").is_none());
}

#[test]
fn stale_index_entry_is_verified_and_corrected() {
    let fs = fs();
    fs.write_file(&CTX, "/victim", b"v").unwrap();
    let (_, first) = fs.testing_dir_block("/").unwrap();
    let env = fs.testing_dir_env();
    let ix = env.index.unwrap();
    // Poison the index: point the name at a bogus object.
    ix.insert(first.ptr(), fnv1a(b"victim"), PPtr::new(64), PPtr::new(64));
    // Lookup must detect the mismatch, fall back to the chain, and still
    // find the real entry (also healing the index).
    let fe = dir::lookup(&env, first, "victim").expect("verified fallback");
    assert!(obj::is_valid(obj::header(fs.region(), fe.ptr())));
    assert_eq!(fs.read_to_vec(&CTX, "/victim").unwrap(), b"v");
    match hit(ix, first.ptr(), "victim") {
        IndexHit::Found(p, _) => assert_eq!(p, fe.ptr(), "index healed"),
        other => panic!("expected healed hit, got {other:?}"),
    }
}

#[test]
fn free_hint_reuses_deleted_slot() {
    let fs = fs();
    fs.mkdir(&CTX, "/d", FileMode::dir(0o777)).unwrap();
    // Build a chain: enough colliding names to need several blocks.
    let base = "seed";
    let mut names = vec![base.to_owned()];
    let mut i = 0;
    while names.len() < 5 {
        let cand = format!("c{i}");
        if simurgh_core::hash::dir_line(&cand, 256) == simurgh_core::hash::dir_line(base, 256) {
            names.push(cand);
        }
        i += 1;
    }
    for n in &names {
        fs.write_file(&CTX, &format!("/d/{n}"), b"x").unwrap();
    }
    let (_, first) = fs.testing_dir_block("/d").unwrap();
    let chain_before = dir::chain(fs.region(), first).count();
    // Delete one from the middle, insert a new colliding name: the freed
    // slot must be reused rather than the chain extended.
    fs.unlink(&CTX, &format!("/d/{}", names[2])).unwrap();
    let newcomer = loop {
        let cand = format!("n{i}");
        if simurgh_core::hash::dir_line(&cand, 256) == simurgh_core::hash::dir_line(base, 256) {
            break cand;
        }
        i += 1;
    };
    fs.write_file(&CTX, &format!("/d/{newcomer}"), b"y").unwrap();
    let chain_after = dir::chain(fs.region(), first).count();
    assert_eq!(chain_after, chain_before, "free slot reused, chain not extended");
    for n in names.iter().filter(|n| *n != &names[2]) {
        assert!(fs.stat(&CTX, &format!("/d/{n}")).is_ok());
    }
    assert!(fs.stat(&CTX, &format!("/d/{newcomer}")).is_ok());
}

#[test]
fn repair_is_per_line_and_self_reindexes() {
    let region = Arc::new(PmemRegion::new(64 << 20));
    let cfg = SimurghConfig { line_max_hold: Duration::from_millis(10), ..Default::default() };
    let fs = SimurghFs::format(region, cfg).unwrap();
    fs.mkdir(&CTX, "/d", FileMode::dir(0o777)).unwrap();
    fs.write_file(&CTX, "/d/a", b"1").unwrap();
    let (_, first) = fs.testing_dir_block("/d").unwrap();
    let env = fs.testing_dir_env();
    let ix = env.index.unwrap();
    assert!(ix.is_complete(first.ptr()));
    // Authority loss is per line: dropping one line leaves the other 255
    // authoritative and the directory as a whole incomplete.
    ix.mark_line_incomplete(first.ptr(), 7);
    assert!(!ix.is_line_complete(first.ptr(), 7));
    assert!(ix.is_line_complete(first.ptr(), 8), "other lines keep authority");
    assert!(!ix.is_complete(first.ptr()));
    // A runtime repair re-converges its own line before returning, so the
    // directory never stays degraded waiting for a full rescan.
    dir::repair_line(&env, first, 7);
    assert!(ix.is_line_complete(first.ptr(), 7), "repair restored line authority");
    assert!(ix.is_complete(first.ptr()));
    assert!(matches!(hit(ix, first.ptr(), "a"), IndexHit::Found(_, _)));
    // A full reindex is still equivalent.
    dir::reindex_dir(&env, first);
    assert!(ix.is_complete(first.ptr()));
    assert!(matches!(hit(ix, first.ptr(), "a"), IndexHit::Found(_, _)));
}

#[test]
fn rename_updates_index_both_sides() {
    let fs = fs();
    fs.mkdir(&CTX, "/src", FileMode::dir(0o777)).unwrap();
    fs.mkdir(&CTX, "/dst", FileMode::dir(0o777)).unwrap();
    fs.write_file(&CTX, "/src/file", b"cargo").unwrap();
    fs.rename(&CTX, "/src/file", "/dst/moved").unwrap();
    let (_, src) = fs.testing_dir_block("/src").unwrap();
    let (_, dst) = fs.testing_dir_block("/dst").unwrap();
    let env = fs.testing_dir_env();
    let ix = env.index.unwrap();
    assert_eq!(hit(ix, src.ptr(), "file"), IndexHit::AbsentForSure);
    assert!(matches!(hit(ix, dst.ptr(), "moved"), IndexHit::Found(_, _)));
    assert_eq!(fs.read_to_vec(&CTX, "/dst/moved").unwrap(), b"cargo");
}

#[test]
fn rmdir_forgets_directory_state() {
    let fs = fs();
    fs.mkdir(&CTX, "/tmp", FileMode::dir(0o777)).unwrap();
    let (_, first) = fs.testing_dir_block("/tmp").unwrap();
    let ptr = first.ptr();
    fs.rmdir(&CTX, "/tmp").unwrap();
    let env = fs.testing_dir_env();
    let ix = env.index.unwrap();
    assert!(!ix.is_complete(ptr), "forgotten after rmdir");
    assert_eq!(hit(ix, ptr, "anything"), IndexHit::Unknown);
}

#[test]
fn mount_rebuild_restores_full_index() {
    let region = Arc::new(PmemRegion::new(64 << 20));
    let fs = SimurghFs::format(region.clone(), SimurghConfig::default()).unwrap();
    fs.mkdir(&CTX, "/a", FileMode::dir(0o755)).unwrap();
    for i in 0..30 {
        fs.write_file(&CTX, &format!("/a/f{i}"), b"z").unwrap();
    }
    fs.unmount();
    let fs2 = SimurghFs::mount(region, SimurghConfig::default()).unwrap();
    assert!(fs2.recovery_report().rebuild_time > Duration::ZERO);
    let (_, first) = fs2.testing_dir_block("/a").unwrap();
    let env = fs2.testing_dir_env();
    let ix = env.index.unwrap();
    assert!(ix.is_complete(first.ptr()), "rebuilt at mount");
    for i in 0..30 {
        assert!(matches!(
            hit(ix, first.ptr(), &format!("f{i}")),
            IndexHit::Found(_, _)
        ));
    }
    // Entry kinds survive too.
    assert_eq!(fs2.stat(&CTX, "/a").unwrap().mode.ftype, FileType::Directory);
}
