//! Property tests for the crash tracker: an explicit model of the
//! volatile/durable split is driven with random store/flush/fence/crash
//! sequences and must agree with the real region byte for byte.

use proptest::prelude::*;
use simurgh_pmem::{PPtr, PmemRegion};

const SIZE: usize = 4096;

#[derive(Debug, Clone)]
enum Cmd {
    Store { off: u16, val: u8 },
    NtStore { off: u16, val: u8 },
    Flush { off: u16, len: u8 },
    Fence,
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0u16..SIZE as u16, any::<u8>()).prop_map(|(off, val)| Cmd::Store { off, val }),
        (0u16..SIZE as u16, any::<u8>()).prop_map(|(off, val)| Cmd::NtStore { off, val }),
        (0u16..SIZE as u16, 1u8..255).prop_map(|(off, len)| Cmd::Flush { off, len }),
        Just(Cmd::Fence),
    ]
}

/// Explicit model: volatile bytes, media bytes, and the set of staged
/// line snapshots awaiting a fence.
struct Model {
    volatile: Vec<u8>,
    media: Vec<u8>,
    staged: Vec<(usize, [u8; 64])>,
}

impl Model {
    fn new() -> Self {
        Model { volatile: vec![0; SIZE], media: vec![0; SIZE], staged: Vec::new() }
    }

    fn stage_lines(&mut self, off: usize, len: usize) {
        let first = off / 64;
        let last = (off + len - 1) / 64;
        for line in first..=last {
            let mut snap = [0u8; 64];
            snap.copy_from_slice(&self.volatile[line * 64..line * 64 + 64]);
            self.staged.push((line, snap));
        }
    }

    fn apply(&mut self, c: &Cmd) {
        match c {
            Cmd::Store { off, val } => self.volatile[*off as usize] = *val,
            Cmd::NtStore { off, val } => {
                self.volatile[*off as usize] = *val;
                self.stage_lines(*off as usize, 1);
            }
            Cmd::Flush { off, len } => {
                let len = (*len as usize).min(SIZE - *off as usize).max(1);
                self.stage_lines(*off as usize, len);
            }
            Cmd::Fence => {
                for (line, snap) in self.staged.drain(..) {
                    self.media[line * 64..line * 64 + 64].copy_from_slice(&snap);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn region_media_matches_model(cmds in proptest::collection::vec(cmd(), 1..120)) {
        let region = PmemRegion::new_tracked(SIZE);
        let mut model = Model::new();
        for c in &cmds {
            match c {
                Cmd::Store { off, val } => region.write(PPtr::new(*off as u64), *val),
                Cmd::NtStore { off, val } => {
                    region.nt_write_from(PPtr::new(*off as u64), &[*val])
                }
                Cmd::Flush { off, len } => {
                    let len = (*len as usize).min(SIZE - *off as usize).max(1);
                    region.flush(PPtr::new(*off as u64), len);
                }
                Cmd::Fence => region.fence(),
            }
            model.apply(c);
        }
        // The durable image after a crash equals the model's media bytes.
        prop_assert_eq!(region.media_image(), model.media);
        // The live image equals the model's volatile bytes.
        prop_assert_eq!(region.volatile_image(), model.volatile);
    }

    #[test]
    fn crash_remount_chain_preserves_media(
        cmds in proptest::collection::vec(cmd(), 1..60),
        more in proptest::collection::vec(cmd(), 1..60),
    ) {
        let region = PmemRegion::new_tracked(SIZE);
        let mut model = Model::new();
        for c in &cmds {
            match c {
                Cmd::Store { off, val } => region.write(PPtr::new(*off as u64), *val),
                Cmd::NtStore { off, val } => region.nt_write_from(PPtr::new(*off as u64), &[*val]),
                Cmd::Flush { off, len } => {
                    let len = (*len as usize).min(SIZE - *off as usize).max(1);
                    region.flush(PPtr::new(*off as u64), len);
                }
                Cmd::Fence => region.fence(),
            }
            model.apply(c);
        }
        // Crash: the remounted region starts from the media image, with
        // volatile == media and nothing staged.
        let r2 = region.simulate_crash();
        let mut m2 = Model { volatile: model.media.clone(), media: model.media.clone(), staged: Vec::new() };
        for c in &more {
            match c {
                Cmd::Store { off, val } => r2.write(PPtr::new(*off as u64), *val),
                Cmd::NtStore { off, val } => r2.nt_write_from(PPtr::new(*off as u64), &[*val]),
                Cmd::Flush { off, len } => {
                    let len = (*len as usize).min(SIZE - *off as usize).max(1);
                    r2.flush(PPtr::new(*off as u64), len);
                }
                Cmd::Fence => r2.fence(),
            }
            m2.apply(c);
        }
        prop_assert_eq!(r2.media_image(), m2.media);
        prop_assert_eq!(r2.volatile_image(), m2.volatile);
    }
}
