//! Page-granular protection metadata.
//!
//! The paper marks file-system data/metadata pages and protected-function
//! pages as *kernel pages* and adds one new page-table bit, `ep`
//! ("execute protected", §3.1). This module stores those bits; the policy
//! that interprets them against the calling thread's privilege level lives
//! in `simurgh-protfn`, which plugs in here via [`AccessPolicy`].

use std::sync::atomic::{AtomicU8, Ordering};

/// Per-page protection flags, mirroring the paper's extended PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags(pub u8);

impl PageFlags {
    /// The page belongs to the kernel / file-system domain; user-mode
    /// accesses must fault.
    pub const KERNEL: PageFlags = PageFlags(0b01);
    /// The `ep` bit: the page contains protected functions and may be the
    /// target of a `jmpp`.
    pub const EP: PageFlags = PageFlags(0b10);

    /// Flag-set union.
    pub const fn union(self, other: PageFlags) -> PageFlags {
        PageFlags(self.0 | other.0)
    }

    /// Whether all bits of `other` are set in `self`.
    pub const fn contains(self, other: PageFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

/// A protection fault detected on an emulated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessFault {
    /// A user-mode (CPL=3) access touched a kernel page.
    UserAccessToKernelPage { page: usize, write: bool },
    /// A write targeted an execute-protected page from user mode (protected
    /// code must be immutable to applications).
    WriteToProtectedCode { page: usize },
}

impl std::fmt::Display for AccessFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessFault::UserAccessToKernelPage { page, write } => write!(
                f,
                "user-mode {} of kernel page {page}",
                if *write { "write" } else { "read" }
            ),
            AccessFault::WriteToProtectedCode { page } => {
                write!(f, "write to execute-protected page {page}")
            }
        }
    }
}

/// Policy hook consulted by [`crate::PmemRegion`] on every access when
/// installed. Implemented by the protected-function simulator.
pub trait AccessPolicy: Send + Sync {
    /// Returns `Err` if the calling thread may not perform this access.
    fn check_access(&self, page: usize, write: bool) -> Result<(), AccessFault>;
}

/// The emulated extended page table: one flag byte per 4-KB page.
pub struct PageTable {
    flags: Vec<AtomicU8>,
}

impl PageTable {
    /// A table covering `pages` pages, all flags clear (plain user pages).
    pub fn new(pages: usize) -> Self {
        PageTable { flags: (0..pages).map(|_| AtomicU8::new(0)).collect() }
    }

    /// Number of pages covered.
    pub fn pages(&self) -> usize {
        self.flags.len()
    }

    /// Reads the flags of one page. Out-of-range pages read as flag-free.
    pub fn get(&self, page: usize) -> PageFlags {
        self.flags.get(page).map_or(PageFlags::default(), |f| PageFlags(f.load(Ordering::Acquire)))
    }

    /// Sets (ORs in) flags on a page range. The privilege check — only
    /// kernel mode may set `EP` — is the caller's job (the protfn kernel
    /// module does it).
    pub fn set(&self, first_page: usize, pages: usize, flags: PageFlags) {
        for p in first_page..first_page + pages {
            if let Some(f) = self.flags.get(p) {
                f.fetch_or(flags.0, Ordering::AcqRel);
            }
        }
    }

    /// Clears flags on a page range.
    pub fn clear(&self, first_page: usize, pages: usize, flags: PageFlags) {
        for p in first_page..first_page + pages {
            if let Some(f) = self.flags.get(p) {
                f.fetch_and(!flags.0, Ordering::AcqRel);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_union_and_contains() {
        let both = PageFlags::KERNEL.union(PageFlags::EP);
        assert!(both.contains(PageFlags::KERNEL));
        assert!(both.contains(PageFlags::EP));
        assert!(!PageFlags::KERNEL.contains(PageFlags::EP));
    }

    #[test]
    fn set_get_clear() {
        let pt = PageTable::new(8);
        assert_eq!(pt.get(3), PageFlags::default());
        pt.set(2, 3, PageFlags::KERNEL);
        assert!(pt.get(2).contains(PageFlags::KERNEL));
        assert!(pt.get(4).contains(PageFlags::KERNEL));
        assert!(!pt.get(5).contains(PageFlags::KERNEL));
        pt.set(3, 1, PageFlags::EP);
        assert!(pt.get(3).contains(PageFlags::KERNEL.union(PageFlags::EP)));
        pt.clear(2, 3, PageFlags::KERNEL);
        assert!(!pt.get(3).contains(PageFlags::KERNEL));
        assert!(pt.get(3).contains(PageFlags::EP));
    }

    #[test]
    fn out_of_range_pages_are_flag_free() {
        let pt = PageTable::new(2);
        assert_eq!(pt.get(100), PageFlags::default());
        pt.set(100, 1, PageFlags::KERNEL); // silently ignored
        assert_eq!(pt.get(100), PageFlags::default());
    }
}
