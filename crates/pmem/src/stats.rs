//! Traffic statistics for an emulated NVMM region.
//!
//! The paper's Table 1 and Fig. 10 break application runtime into
//! *application*, *data copy* and *file system* shares. The data-copy share
//! is derived from the byte counters collected here; the harness samples a
//! [`StatsSnapshot`] before and after a phase and diffs it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of region traffic. All counters use relaxed atomics:
/// they are statistics, not synchronization.
#[derive(Default)]
pub struct PmemStats {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    bytes_nt_written: AtomicU64,
    flushed_lines: AtomicU64,
    fences: AtomicU64,
    fences_elided: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub bytes_nt_written: u64,
    pub flushed_lines: u64,
    pub fences: u64,
    /// Fences requested while a [`FenceScope`](crate::FenceScope) was active
    /// on the calling thread and therefore deferred to the scope's single
    /// closing `sfence` — the group-commit win, directly observable.
    pub fences_elided: u64,
}

impl StatsSnapshot {
    /// Total bytes moved between NVMM and DRAM in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written + self.bytes_nt_written
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_nt_written: self.bytes_nt_written.saturating_sub(earlier.bytes_nt_written),
            flushed_lines: self.flushed_lines.saturating_sub(earlier.flushed_lines),
            fences: self.fences.saturating_sub(earlier.fences),
            fences_elided: self.fences_elided.saturating_sub(earlier.fences_elided),
        }
    }

    /// Renders the snapshot as a single-line JSON object, for embedding in
    /// the harness's machine-readable probe output.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bytes_read\":{},\"bytes_written\":{},\"bytes_nt_written\":{},\
             \"flushed_lines\":{},\"fences\":{},\"fences_elided\":{}}}",
            self.bytes_read, self.bytes_written, self.bytes_nt_written, self.flushed_lines,
            self.fences, self.fences_elided
        )
    }
}

impl PmemStats {
    #[inline]
    pub(crate) fn count_read(&self, bytes: usize) {
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_write(&self, bytes: usize) {
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_nt_write(&self, bytes: usize) {
        self.bytes_nt_written.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_flush(&self, lines: usize) {
        self.flushed_lines.fetch_add(lines as u64, Ordering::Relaxed);
    }

    /// Counts one fence and returns the new running total (the region's
    /// fence hook reports it as the sfence-boundary number).
    #[inline]
    pub(crate) fn count_fence(&self) -> u64 {
        self.fences.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Counts one fence request absorbed by an active group-commit scope.
    #[inline]
    pub(crate) fn count_elided_fence(&self) {
        self.fences_elided.fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_nt_written: self.bytes_nt_written.load(Ordering::Relaxed),
            flushed_lines: self.flushed_lines.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            fences_elided: self.fences_elided.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let s = PmemStats::default();
        s.count_read(10);
        let a = s.snapshot();
        s.count_read(5);
        s.count_write(3);
        s.count_nt_write(2);
        s.count_fence();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.bytes_read, 5);
        assert_eq!(d.bytes_written, 3);
        assert_eq!(d.bytes_nt_written, 2);
        assert_eq!(d.fences, 1);
        assert_eq!(d.bytes_total(), 10);
    }

    #[test]
    fn json_lists_every_counter() {
        let snap = StatsSnapshot { bytes_read: 1, fences: 5, ..Default::default() };
        let j = snap.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "bytes_read",
            "bytes_written",
            "bytes_nt_written",
            "flushed_lines",
            "fences",
            "fences_elided",
        ] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
        assert!(j.contains("\"bytes_read\":1"));
        assert!(j.contains("\"fences\":5"));
    }

    #[test]
    fn since_saturates() {
        let newer = StatsSnapshot { bytes_read: 1, ..Default::default() };
        let older = StatsSnapshot { bytes_read: 5, ..Default::default() };
        assert_eq!(newer.since(&older).bytes_read, 0);
    }
}
