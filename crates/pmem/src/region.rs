//! The emulated NVMM region and its access primitives.
//!
//! A [`PmemRegion`] owns one contiguous, page-aligned allocation that stands
//! in for a DAX-mapped persistent-memory device. All loads and stores issued
//! by the file systems go through this type so that
//!
//! * persistence ordering (`store → clwb → sfence`) is observable by the
//!   crash tracker,
//! * per-page access control can be enforced (protected functions, §3.2),
//! * traffic statistics can be attributed (Table 1 / Fig. 10 breakdowns).

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8};
use std::sync::{Arc, OnceLock};

use crate::prot::{AccessFault, AccessPolicy};
use crate::stats::PmemStats;
use crate::tracker::{FaultPlan, TrackMode, Tracker};
use crate::{PPtr, CACHE_LINE, PAGE_SIZE};

/// Errors surfaced by fallible region operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmemError {
    /// Access outside the region bounds.
    OutOfBounds { off: u64, len: usize, region: usize },
    /// Page-protection violation reported by the [`AccessPolicy`].
    Fault(AccessFault),
    /// The region image passed to [`RegionBuilder::from_image`] has an
    /// invalid size (must be a whole number of pages).
    BadImage { len: usize },
    /// An existing region file's length does not match the requested region
    /// size. Opening it anyway would either silently truncate the media or
    /// map pages past EOF (SIGBUS on access), so it is a hard typed error.
    SizeMismatch { file_len: usize, requested: usize },
    /// A region file could not be opened, sized or mapped. Carries the path
    /// and a rendered cause (`io::Error` is neither `Clone` nor `PartialEq`,
    /// so the cause is stringified).
    BadFile { path: String, reason: String },
}

impl std::fmt::Display for PmemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmemError::OutOfBounds { off, len, region } => {
                write!(f, "pmem access [{off:#x}, +{len}) outside region of {region} bytes")
            }
            PmemError::Fault(fault) => write!(f, "pmem protection fault: {fault}"),
            PmemError::BadImage { len } => {
                write!(f, "pmem image length {len} is not a whole number of pages")
            }
            PmemError::SizeMismatch { file_len, requested } => {
                write!(
                    f,
                    "region file is {file_len} bytes but {requested} were requested \
                     (refusing to truncate or extend an existing region)"
                )
            }
            PmemError::BadFile { path, reason } => {
                write!(f, "region file {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for PmemError {}

// ---------------------------------------------------------------------------
// mmap FFI (file-backed regions)
// ---------------------------------------------------------------------------

/// Minimal `mmap`/`munmap` bindings. The workspace deliberately has no libc
/// crate dependency; std already links libc, so declaring the two symbols we
/// need is enough. Constants are the Linux values (the only supported host).
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const PROT_WRITE: i32 = 0x2;
    pub const MAP_SHARED: i32 = 0x01;

    extern "C" {
        /// libc `mmap`. On 64-bit Linux `off_t` is `i64`.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        /// libc `munmap`.
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// `mmap`'s error return.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// What owns the bytes behind [`PmemRegion::base`].
enum Backing {
    /// Process-private heap allocation (the original emulation mode).
    Heap { layout: Layout },
    /// `MAP_SHARED` mapping of a region file: every process that maps the
    /// same file sees the same bytes, DAX-style. The file handle is kept
    /// only to document ownership; the mapping outlives any close.
    File { _file: std::fs::File, path: PathBuf },
}

/// Values that can be stored to and loaded from persistent memory by plain
/// byte copy.
///
/// # Safety
///
/// Implementors must be valid for any bit pattern and contain no padding
/// whose content matters (padding bytes are copied verbatim).
pub unsafe trait Pod: Copy + 'static {}

// SAFETY: plain integers and byte arrays are valid for every bit pattern
// and contain no padding.
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl<const N: usize> Pod for [u8; N] {}

/// Builder for [`PmemRegion`].
pub struct RegionBuilder {
    pages: usize,
    mode: TrackMode,
    policy: Option<Arc<dyn AccessPolicy>>,
    image: Option<Vec<u8>>,
    file: Option<PathBuf>,
    /// True for [`open_file`](Self::open_file): the region length is taken
    /// from the existing file rather than from `pages`.
    size_from_file: bool,
}

impl RegionBuilder {
    /// Starts a builder for a region of `bytes` (rounded up to whole pages).
    pub fn new(bytes: usize) -> Self {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        RegionBuilder {
            pages,
            mode: TrackMode::Raw,
            policy: None,
            image: None,
            file: None,
            size_from_file: false,
        }
    }

    /// Starts a builder that maps an **existing** region file, taking the
    /// region length from the file itself. `build` fails with a typed error
    /// if the file is missing, empty or not a whole number of pages.
    pub fn open_file(path: impl Into<PathBuf>) -> Self {
        let mut b = RegionBuilder::new(PAGE_SIZE);
        b.file = Some(path.into());
        b.size_from_file = true;
        b
    }

    /// Selects raw (fast) or tracked (crash-simulating) mode.
    pub fn mode(mut self, mode: TrackMode) -> Self {
        self.mode = mode;
        self
    }

    /// Installs a page access policy (protected-function enforcement).
    pub fn policy(mut self, policy: Arc<dyn AccessPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Initializes the region contents from a previously captured image
    /// (e.g. the media image surviving a simulated crash).
    pub fn from_image(mut self, image: Vec<u8>) -> Self {
        self.pages = image.len() / PAGE_SIZE;
        self.image = Some(image);
        self
    }

    /// Backs the region with a `MAP_SHARED` mapping of `path` instead of a
    /// private heap allocation (DAX-style: other processes mapping the same
    /// file share the bytes).
    ///
    /// * With [`new`](Self::new): the file is created at the requested size
    ///   if missing; an existing *smaller* file is grown to the requested
    ///   size (existing contents preserved — this is how an aged image is
    ///   adopted at a larger capacity; the filesystem layer is responsible
    ///   for re-recording its geometry). Shrinking is never performed:
    ///   an existing file *larger* than the request is
    ///   [`PmemError::SizeMismatch`].
    /// * With [`from_image`](Self::from_image): materializes the image at
    ///   `path`; the file must be new or empty (same mismatch rule).
    pub fn file(mut self, path: impl Into<PathBuf>) -> Self {
        self.file = Some(path.into());
        self
    }

    /// Builds the region.
    pub fn build(self) -> Result<PmemRegion, PmemError> {
        if let Some(img) = &self.image {
            if img.len() % PAGE_SIZE != 0 || img.is_empty() {
                return Err(PmemError::BadImage { len: img.len() });
            }
        }
        let (base, len, backing) = match &self.file {
            None => {
                let len = self.pages * PAGE_SIZE;
                let layout = Layout::from_size_align(len, PAGE_SIZE).expect("valid layout");
                // SAFETY: layout has non-zero size.
                let base = unsafe { alloc_zeroed(layout) };
                assert!(!base.is_null(), "pmem allocation of {len} bytes failed");
                (base, len, Backing::Heap { layout })
            }
            Some(path) => {
                let (base, len, backing) = Self::map_file(
                    path,
                    self.size_from_file,
                    self.pages * PAGE_SIZE,
                    self.image.is_some(),
                )?;
                (base, len, backing)
            }
        };
        if let Some(img) = &self.image {
            // SAFETY: base is valid for len bytes and img.len() == len
            // (heap: len derives from the image; file: map_file verified it).
            unsafe { std::ptr::copy_nonoverlapping(img.as_ptr(), base, len) };
        }
        let tracker = match self.mode {
            TrackMode::Raw => None,
            TrackMode::Tracked => {
                let initial = match self.image {
                    Some(img) => img,
                    // File backing may carry pre-existing contents: the
                    // tracker's media image starts from what is mapped.
                    None if matches!(backing, Backing::File { .. }) => {
                        let mut v = vec![0u8; len];
                        // SAFETY: base is valid for len bytes; v is len bytes.
                        unsafe { std::ptr::copy_nonoverlapping(base, v.as_mut_ptr(), len) };
                        v
                    }
                    None => vec![0u8; len],
                };
                Some(Tracker::new(initial))
            }
        };
        Ok(PmemRegion {
            base,
            len,
            backing,
            tracker,
            policy: self.policy,
            stats: PmemStats::default(),
            fence_hook: OnceLock::new(),
            id: REGION_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }

    /// Opens/creates and maps a region file, enforcing the size rules.
    fn map_file(
        path: &Path,
        size_from_file: bool,
        requested: usize,
        has_image: bool,
    ) -> Result<(*mut u8, usize, Backing), PmemError> {
        let bad = |reason: String| PmemError::BadFile {
            path: path.display().to_string(),
            reason,
        };
        let mut opts = std::fs::OpenOptions::new();
        opts.read(true).write(true);
        if !size_from_file {
            opts.create(true);
        }
        let file = opts.open(path).map_err(|e| bad(format!("open failed: {e}")))?;
        let file_len = file.metadata().map_err(|e| bad(format!("stat failed: {e}")))?.len()
            as usize;
        let len = if size_from_file {
            if file_len == 0 || !file_len.is_multiple_of(PAGE_SIZE) {
                return Err(bad(format!(
                    "length {file_len} is not a whole, non-zero number of pages"
                )));
            }
            file_len
        } else {
            // An existing file is never *shrunk*: with an image that would
            // silently truncate media, without one it would tear pages out
            // from under a peer that already mapped them. Growing is safe —
            // peers keep their old-length mappings and the filesystem layer
            // adopts the new geometry on its next exclusive mount.
            if file_len > requested {
                return Err(PmemError::SizeMismatch { file_len, requested });
            }
            let _ = has_image; // same rule either way; kept for clarity
            if file_len != requested {
                file.set_len(requested as u64)
                    .map_err(|e| bad(format!("set_len({requested}) failed: {e}")))?;
            }
            requested
        };
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is open read-write, len is a non-zero page multiple no
        // larger than the file, offset 0. A MAP_SHARED mapping of a regular
        // file is valid for len bytes until munmap.
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if base == sys::map_failed() || base.is_null() {
            return Err(bad(format!("mmap of {len} bytes failed")));
        }
        Ok((base as *mut u8, len, Backing::File { _file: file, path: path.to_owned() }))
    }
}

/// One emulated NVMM device.
///
/// The region is `Sync`: concurrent access is coordinated by the file-system
/// protocols built on top (atomic flags, busy-wait locks), exactly as on real
/// shared persistent memory.
pub struct PmemRegion {
    base: *mut u8,
    len: usize,
    backing: Backing,
    tracker: Option<Tracker>,
    policy: Option<Arc<dyn AccessPolicy>>,
    stats: PmemStats,
    /// Observer invoked after every [`fence`](Self::fence) with the running
    /// fence count — the hook by which the file system's trace ring records
    /// sfence boundaries without `pmem` depending on upper layers. Set once
    /// per region (a `simulate_crash` image is a *new* region: re-install
    /// at mount).
    fence_hook: OnceLock<Box<dyn Fn(u64) + Send + Sync>>,
    /// Process-unique instance id keying this region's entries in the
    /// thread-local [`FenceScope`] registry (a `simulate_crash` image is a
    /// *new* region and gets a fresh id, so stale scope entries from a
    /// pre-crash region can never absorb post-remount fences).
    id: u64,
}

/// Source of [`PmemRegion::id`] values. Starts at 1 so 0 can never key a
/// live registry entry.
static REGION_IDS: AtomicU64 = AtomicU64::new(1);

/// One thread's view of an active group-commit scope on one region.
struct TlScope {
    region_id: u64,
    /// Nesting depth: inner `fence_scope()` calls on the same region reuse
    /// the entry; only the outermost drop closes the group.
    depth: u32,
    /// Whether a fence was requested (and deferred) since the last real
    /// fence on this thread. The closing fence is skipped when false.
    pending: bool,
}

thread_local! {
    /// Active group-commit scopes on this thread. Tiny (0–2 entries), so a
    /// linear scan beats any map.
    static ACTIVE_SCOPES: RefCell<Vec<TlScope>> = const { RefCell::new(Vec::new()) };
}

/// RAII group-commit scope returned by [`PmemRegion::fence_scope`].
///
/// While the scope is alive **on the creating thread**, every
/// [`fence`](PmemRegion::fence) (and the fence half of
/// [`persist`](PmemRegion::persist)) on this region is deferred: `clwb`s
/// still stage their lines, but the `sfence` is issued once, when the scope
/// drops — the paper's `store → clwb → … → single sfence` group-commit
/// pattern. Ordering-critical persists inside the scope either call
/// [`commit`](Self::commit) or go through the always-eager
/// [`fence_now`](PmemRegion::fence_now)/[`persist_now`](PmemRegion::persist_now)
/// primitives, which fence immediately *and* mark the group clean (one
/// `sfence` retires every previously staged line, so the scope need not
/// fence again unless more deferred work follows).
///
/// Crash-soundness: in the deterministic tracker model, all lines staged
/// between two fences become durable atomically. Coalescing N fences into
/// one therefore only *removes* intermediate crash states — every state
/// reachable with a scope active is also reachable in the eager schedule
/// (cut before the group or after it). Commit points keep their own
/// boundary via the `_now` primitives, so recovery-relevant orderings are
/// never coalesced across.
pub struct FenceScope<'r> {
    region: &'r PmemRegion,
    /// Scopes are registered in thread-local state: keep the guard on the
    /// thread that opened it.
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl FenceScope<'_> {
    /// Issues the group's fence *now* (an explicit intra-scope commit
    /// point). Deferred flushes staged so far become durable; the scope is
    /// marked clean and will only fence at drop if further deferred fences
    /// accumulate. May be called any number of times.
    pub fn commit(&self) {
        self.region.fence_now();
    }
}

impl Drop for FenceScope<'_> {
    fn drop(&mut self) {
        let fence_needed = ACTIVE_SCOPES.with(|s| {
            let mut v = s.borrow_mut();
            let i = v
                .iter()
                .position(|e| e.region_id == self.region.id)
                .expect("FenceScope dropped on a thread that never opened it");
            if v[i].depth > 1 {
                v[i].depth -= 1;
                false
            } else {
                let pending = v[i].pending;
                v.remove(i);
                pending
            }
        });
        if fence_needed {
            self.region.fence_now();
        }
    }
}

// SAFETY: the raw allocation is only accessed through the methods below;
// racing plain stores are possible if callers misuse the API, but the public
// surface mirrors shared persistent memory, where the same caution applies.
// Synchronisation is the responsibility of the lock/flag protocols above.
unsafe impl Send for PmemRegion {}
unsafe impl Sync for PmemRegion {}

impl Drop for PmemRegion {
    fn drop(&mut self) {
        match &self.backing {
            Backing::Heap { layout } => {
                // SAFETY: base was allocated with this layout in
                // RegionBuilder::build.
                unsafe { dealloc(self.base, *layout) };
            }
            Backing::File { .. } => {
                // SAFETY: base/len are the mapping created in map_file and
                // no references into it outlive the region (the accessors
                // all borrow self).
                let rc = unsafe { sys::munmap(self.base as *mut _, self.len) };
                debug_assert_eq!(rc, 0, "munmap failed");
            }
        }
    }
}

impl PmemRegion {
    /// Convenience: a raw-mode region of `bytes` bytes.
    pub fn new(bytes: usize) -> Self {
        RegionBuilder::new(bytes).build().expect("raw region build cannot fail")
    }

    /// Convenience: a crash-tracked region of `bytes` bytes.
    pub fn new_tracked(bytes: usize) -> Self {
        RegionBuilder::new(bytes).mode(TrackMode::Tracked).build().expect("tracked region")
    }

    /// Region length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the region has zero length (never the case in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Traffic statistics for this region.
    #[inline]
    pub fn stats(&self) -> &PmemStats {
        &self.stats
    }

    /// Whether this region runs with the crash tracker enabled.
    #[inline]
    pub fn is_tracked(&self) -> bool {
        self.tracker.is_some()
    }

    /// Whether this region is a `MAP_SHARED` mapping of a region file.
    #[inline]
    pub fn is_file_backed(&self) -> bool {
        matches!(self.backing, Backing::File { .. })
    }

    /// The backing file's path, for file-backed regions.
    pub fn file_path(&self) -> Option<&Path> {
        match &self.backing {
            Backing::File { path, .. } => Some(path),
            Backing::Heap { .. } => None,
        }
    }

    #[inline]
    fn bounds(&self, p: PPtr, len: usize) {
        let end = p.off() as usize + len;
        assert!(
            (p.off() as usize) < self.len && end <= self.len,
            "pmem access [{:#x}, +{}) outside region of {} bytes",
            p.off(),
            len,
            self.len
        );
    }

    #[inline]
    fn guard(&self, p: PPtr, len: usize, write: bool) {
        self.bounds(p, len);
        if let Some(policy) = &self.policy {
            let first = p.page();
            let last = (p.off() as usize + len - 1) / PAGE_SIZE;
            for page in first..=last {
                if let Err(fault) = policy.check_access(page, write) {
                    panic!("pmem protection fault: {fault}");
                }
            }
        }
    }

    /// Checks whether an access would be allowed without performing it.
    /// Used by security tests and by recovery code validating pointers from
    /// a possibly corrupted image.
    pub fn check_access(&self, p: PPtr, len: usize, write: bool) -> Result<(), PmemError> {
        let end = p.off() as usize + len;
        if p.off() as usize >= self.len || end > self.len || len == 0 {
            return Err(PmemError::OutOfBounds { off: p.off(), len, region: self.len });
        }
        if let Some(policy) = &self.policy {
            let first = p.page();
            let last = (end - 1) / PAGE_SIZE;
            for page in first..=last {
                policy.check_access(page, write).map_err(PmemError::Fault)?;
            }
        }
        Ok(())
    }

    /// Whether a range lies within the region (no policy check).
    pub fn in_bounds(&self, p: PPtr, len: usize) -> bool {
        let end = p.off().checked_add(len as u64);
        matches!(end, Some(e) if (e as usize) <= self.len)
    }

    // ----- plain loads & stores -------------------------------------------

    /// Loads a POD value.
    #[inline]
    pub fn read<T: Pod>(&self, p: PPtr) -> T {
        self.guard(p, size_of::<T>(), false);
        self.stats.count_read(size_of::<T>());
        // SAFETY: bounds checked; T is Pod so any bit pattern is valid.
        unsafe { std::ptr::read_unaligned(self.base.add(p.off() as usize) as *const T) }
    }

    /// Stores a POD value (write-back cached; durable only after
    /// [`flush`](Self::flush) + [`fence`](Self::fence)).
    #[inline]
    pub fn write<T: Pod>(&self, p: PPtr, val: T) {
        self.guard(p, size_of::<T>(), true);
        self.stats.count_write(size_of::<T>());
        // SAFETY: bounds checked.
        unsafe { std::ptr::write_unaligned(self.base.add(p.off() as usize) as *mut T, val) };
        if let Some(t) = &self.tracker {
            t.mark_dirty(p.off() as usize, size_of::<T>());
        }
    }

    /// Copies bytes out of the region into `buf`.
    #[inline]
    pub fn read_into(&self, p: PPtr, buf: &mut [u8]) {
        self.guard(p, buf.len(), false);
        self.stats.count_read(buf.len());
        // SAFETY: bounds checked; regions never overlap a caller's buffer.
        unsafe {
            std::ptr::copy_nonoverlapping(self.base.add(p.off() as usize), buf.as_mut_ptr(), buf.len())
        };
    }

    /// Copies `buf` into the region with regular (cached) stores.
    #[inline]
    pub fn write_from(&self, p: PPtr, buf: &[u8]) {
        self.guard(p, buf.len(), true);
        self.stats.count_write(buf.len());
        // SAFETY: bounds checked.
        unsafe {
            std::ptr::copy_nonoverlapping(buf.as_ptr(), self.base.add(p.off() as usize), buf.len())
        };
        if let Some(t) = &self.tracker {
            t.mark_dirty(p.off() as usize, buf.len());
        }
    }

    /// Copies `buf` into the region with emulated **non-temporal** stores:
    /// the data bypasses the cache and becomes durable at the next
    /// [`fence`](Self::fence), with no explicit `clwb` required. Simurgh's
    /// data path uses this (paper §4.3 "Data operations").
    #[inline]
    pub fn nt_write_from(&self, p: PPtr, buf: &[u8]) {
        self.guard(p, buf.len(), true);
        self.stats.count_nt_write(buf.len());
        // SAFETY: bounds checked.
        unsafe {
            std::ptr::copy_nonoverlapping(buf.as_ptr(), self.base.add(p.off() as usize), buf.len())
        };
        if let Some(t) = &self.tracker {
            // Non-temporal stores go straight to the write-pending queue.
            t.stage(self.base, self.len, p.off() as usize, buf.len());
        }
    }

    /// Zeroes a byte range with regular stores.
    pub fn zero(&self, p: PPtr, len: usize) {
        self.guard(p, len, true);
        self.stats.count_write(len);
        // SAFETY: bounds checked.
        unsafe { std::ptr::write_bytes(self.base.add(p.off() as usize), 0, len) };
        if let Some(t) = &self.tracker {
            t.mark_dirty(p.off() as usize, len);
        }
    }

    // ----- persistence primitives -----------------------------------------

    /// Emulated `clwb`: initiates write-back of every cache line overlapping
    /// the range. The lines become durable at the next [`fence`](Self::fence).
    #[inline]
    pub fn flush(&self, p: PPtr, len: usize) {
        self.bounds(p, len.max(1));
        self.stats.count_flush(len.div_ceil(CACHE_LINE).max(1));
        if let Some(t) = &self.tracker {
            t.stage(self.base, self.len, p.off() as usize, len);
        }
    }

    /// Emulated `sfence`: all previously initiated write-backs (and
    /// non-temporal stores) become durable on the media image.
    ///
    /// The running fence count (both the [`stats`](Self::stats) counter and
    /// the tracker's `FaultPlan` boundary counter) is **per region instance**
    /// — i.e. per process, never in the shared mapping. Two mounts of the
    /// same region file therefore keep independent fault-plan accounting: a
    /// fence issued through one mapping is invisible to the other's counters,
    /// exactly like per-CPU sfence retirement on real hardware.
    /// With a [`FenceScope`] active on the calling thread, the `sfence` is
    /// *deferred* to the scope (counted in `fences_elided`, invisible to
    /// fault plans and the fence hook — no persistence boundary is crossed
    /// until the group commits). Use [`fence_now`](Self::fence_now) at
    /// ordering-critical commit points.
    #[inline]
    pub fn fence(&self) {
        if self.defer_to_scope() {
            self.stats.count_elided_fence();
            return;
        }
        self.fence_now();
    }

    /// Emulated `sfence`, issued unconditionally — bypasses any active
    /// [`FenceScope`]. One `sfence` retires *every* previously staged line,
    /// so this also marks the thread's active scope (if any) clean: the
    /// scope will not issue a redundant closing fence for work this call
    /// already made durable.
    #[inline]
    pub fn fence_now(&self) {
        let n = self.stats.count_fence();
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        if let Some(t) = &self.tracker {
            t.fence();
        }
        if let Some(hook) = self.fence_hook.get() {
            hook(n);
        }
        ACTIVE_SCOPES.with(|s| {
            if let Some(e) = s.borrow_mut().iter_mut().find(|e| e.region_id == self.id) {
                e.pending = false;
            }
        });
    }

    /// True if a [`FenceScope`] on this region is active on this thread (the
    /// deferred fence is recorded as pending).
    #[inline]
    fn defer_to_scope(&self) -> bool {
        ACTIVE_SCOPES.with(|s| {
            let mut v = s.borrow_mut();
            match v.iter_mut().find(|e| e.region_id == self.id) {
                Some(e) => {
                    e.pending = true;
                    true
                }
                None => false,
            }
        })
    }

    /// Opens a group-commit scope on this region for the calling thread:
    /// until the returned guard drops, [`fence`](Self::fence) requests are
    /// coalesced into (at most) one `sfence` at scope close. Nests — inner
    /// scopes are free, only the outermost drop fences.
    pub fn fence_scope(&self) -> FenceScope<'_> {
        ACTIVE_SCOPES.with(|s| {
            let mut v = s.borrow_mut();
            match v.iter_mut().find(|e| e.region_id == self.id) {
                Some(e) => e.depth += 1,
                None => v.push(TlScope { region_id: self.id, depth: 1, pending: false }),
            }
        });
        FenceScope { region: self, _not_send: std::marker::PhantomData }
    }

    /// Installs the fence observer (at most once per region; later calls
    /// are ignored). Called with the running fence count after each
    /// [`fence`](Self::fence).
    pub fn set_fence_hook(&self, hook: Box<dyn Fn(u64) + Send + Sync>) {
        let _ = self.fence_hook.set(hook);
    }

    /// Convenience `clwb + sfence` over one range. Scope-aware: the fence
    /// half defers to an active [`FenceScope`].
    #[inline]
    pub fn persist(&self, p: PPtr, len: usize) {
        self.flush(p, len);
        self.fence();
    }

    /// Convenience `clwb + sfence` that always fences immediately — the
    /// commit-point flavour of [`persist`](Self::persist), immune to
    /// [`FenceScope`] coalescing.
    #[inline]
    pub fn persist_now(&self, p: PPtr, len: usize) {
        self.flush(p, len);
        self.fence_now();
    }

    // ----- atomics ----------------------------------------------------------

    /// An atomic view of 8 bytes at `p` (must be 8-byte aligned).
    ///
    /// Atomic stores through this handle are *cached* like plain stores: they
    /// must still be flushed and fenced to become durable. Use
    /// [`persist`](Self::persist) on the same address at protocol persist
    /// points.
    #[inline]
    pub fn atomic_u64(&self, p: PPtr) -> &AtomicU64 {
        self.guard(p, 8, true);
        assert!(p.is_aligned(8), "atomic_u64 at unaligned offset {:#x}", p.off());
        // SAFETY: bounds + alignment checked; AtomicU64 has the same layout as u64.
        unsafe { &*(self.base.add(p.off() as usize) as *const AtomicU64) }
    }

    /// An atomic view of 4 bytes at `p` (must be 4-byte aligned).
    #[inline]
    pub fn atomic_u32(&self, p: PPtr) -> &AtomicU32 {
        self.guard(p, 4, true);
        assert!(p.is_aligned(4), "atomic_u32 at unaligned offset {:#x}", p.off());
        // SAFETY: bounds + alignment checked.
        unsafe { &*(self.base.add(p.off() as usize) as *const AtomicU32) }
    }

    /// An atomic view of one byte at `p`.
    #[inline]
    pub fn atomic_u8(&self, p: PPtr) -> &AtomicU8 {
        self.guard(p, 1, true);
        // SAFETY: bounds checked.
        unsafe { &*(self.base.add(p.off() as usize) as *const AtomicU8) }
    }

    /// Notifies the crash tracker that an atomic store happened at `p`
    /// (atomics bypass the plain-store hooks). No-op in raw mode.
    #[inline]
    pub fn note_atomic(&self, p: PPtr, len: usize) {
        if let Some(t) = &self.tracker {
            t.mark_dirty(p.off() as usize, len);
        }
    }

    // ----- crash simulation -------------------------------------------------

    /// Installs a [`FaultPlan`] on the crash tracker, resetting the
    /// persistence-boundary counter (fences issued before arming are not
    /// counted against the plan). Panics in raw mode.
    pub fn arm_faults(&self, plan: FaultPlan) {
        self.tracker.as_ref().expect("arm_faults requires TrackMode::Tracked").arm(plan);
    }

    /// Persistence boundaries (`sfence` commits) crossed since the last
    /// [`arm_faults`](Self::arm_faults) call. Panics in raw mode.
    pub fn fence_count(&self) -> u64 {
        self.tracker.as_ref().expect("fence_count requires TrackMode::Tracked").fence_count()
    }

    /// Whether the armed fault plan's power cut has fired: once true, the
    /// media image is frozen and nothing else becomes durable. Panics in
    /// raw mode.
    pub fn powercut_tripped(&self) -> bool {
        self.tracker
            .as_ref()
            .expect("powercut_tripped requires TrackMode::Tracked")
            .powercut_tripped()
    }

    /// Returns a copy of the **media image**: the bytes that would survive a
    /// power failure right now. Panics in raw mode.
    pub fn media_image(&self) -> Vec<u8> {
        self.tracker
            .as_ref()
            .expect("media_image requires TrackMode::Tracked")
            .media_image()
    }

    /// Simulates a power failure and remount: returns a fresh tracked region
    /// whose contents are exactly the durable media image. The current
    /// (volatile) contents of `self` are discarded, like CPU caches on a
    /// power cut.
    pub fn simulate_crash(&self) -> PmemRegion {
        let image = self.media_image();
        RegionBuilder::new(image.len())
            .mode(TrackMode::Tracked)
            .from_image(image)
            .build()
            .expect("crash image is page-aligned")
    }

    /// Lines written since the last fence that persisted them — i.e. data
    /// that would be lost on a crash right now. Diagnostic for persistence
    /// lint tests. Panics in raw mode.
    pub fn unpersisted_lines(&self) -> usize {
        self.tracker
            .as_ref()
            .expect("unpersisted_lines requires TrackMode::Tracked")
            .dirty_line_count()
    }

    /// Touches every page of the allocation so first-touch page faults are
    /// taken now rather than inside a timed benchmark phase. No effect on
    /// contents, statistics or tracking.
    pub fn prewarm(&self) {
        let mut page = 0;
        while page < self.len {
            // SAFETY: in-bounds; rewriting the current value is benign.
            unsafe {
                let p = self.base.add(page);
                std::ptr::write_volatile(p, std::ptr::read_volatile(p));
            }
            page += PAGE_SIZE;
        }
    }

    /// Full volatile image (what the running system currently sees).
    pub fn volatile_image(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.len];
        self.read_into(PPtr::NULL, &mut v[..]);
        v
    }
}

impl std::fmt::Debug for PmemRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemRegion")
            .field("len", &self.len)
            .field("tracked", &self.is_tracked())
            .field("policy", &self.policy.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn read_write_roundtrip() {
        let r = PmemRegion::new(8192);
        r.write(PPtr::new(100), 0xdead_beef_u32);
        assert_eq!(r.read::<u32>(PPtr::new(100)), 0xdead_beef);
        r.write(PPtr::new(4096), [1u8, 2, 3, 4]);
        assert_eq!(r.read::<[u8; 4]>(PPtr::new(4096)), [1, 2, 3, 4]);
    }

    #[test]
    fn bulk_copy_roundtrip() {
        let r = PmemRegion::new(8192);
        let data: Vec<u8> = (0..=255).collect();
        r.write_from(PPtr::new(500), &data);
        let mut out = vec![0u8; 256];
        r.read_into(PPtr::new(500), &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn zero_range() {
        let r = PmemRegion::new(4096);
        r.write_from(PPtr::new(0), &[0xff; 128]);
        r.zero(PPtr::new(32), 64);
        let mut out = vec![0u8; 128];
        r.read_into(PPtr::new(0), &mut out);
        assert!(out[..32].iter().all(|&b| b == 0xff));
        assert!(out[32..96].iter().all(|&b| b == 0));
        assert!(out[96..].iter().all(|&b| b == 0xff));
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn out_of_bounds_read_panics() {
        let r = PmemRegion::new(4096);
        let _ = r.read::<u64>(PPtr::new(4090));
    }

    #[test]
    fn atomics_are_shared() {
        let r = PmemRegion::new(4096);
        let a = r.atomic_u64(PPtr::new(64));
        a.store(7, Ordering::SeqCst);
        assert_eq!(r.read::<u64>(PPtr::new(64)), 7);
        assert_eq!(r.atomic_u64(PPtr::new(64)).load(Ordering::SeqCst), 7);
        let res = a.compare_exchange(7, 9, Ordering::SeqCst, Ordering::SeqCst);
        assert!(res.is_ok());
        assert_eq!(r.read::<u64>(PPtr::new(64)), 9);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_atomic_panics() {
        let r = PmemRegion::new(4096);
        let _ = r.atomic_u64(PPtr::new(3));
    }

    #[test]
    fn unflushed_stores_do_not_survive_crash() {
        let r = PmemRegion::new_tracked(4096);
        r.write(PPtr::new(0), 0x11111111_u32);
        // No flush, no fence: lost on crash.
        let crashed = r.simulate_crash();
        assert_eq!(crashed.read::<u32>(PPtr::new(0)), 0);
    }

    #[test]
    fn flushed_but_unfenced_stores_do_not_survive_crash() {
        let r = PmemRegion::new_tracked(4096);
        r.write(PPtr::new(0), 0x22222222_u32);
        r.flush(PPtr::new(0), 4);
        let crashed = r.simulate_crash();
        assert_eq!(crashed.read::<u32>(PPtr::new(0)), 0);
    }

    #[test]
    fn persisted_stores_survive_crash() {
        let r = PmemRegion::new_tracked(4096);
        r.write(PPtr::new(0), 0x33333333_u32);
        r.persist(PPtr::new(0), 4);
        let crashed = r.simulate_crash();
        assert_eq!(crashed.read::<u32>(PPtr::new(0)), 0x33333333);
    }

    #[test]
    fn nt_stores_survive_after_fence_only() {
        let r = PmemRegion::new_tracked(4096);
        r.nt_write_from(PPtr::new(128), &[0xab; 64]);
        // nt stores skip clwb but still need the fence.
        let crashed_before_fence = r.simulate_crash();
        assert_eq!(crashed_before_fence.read::<u8>(PPtr::new(128)), 0);
        r.fence();
        let crashed = r.simulate_crash();
        assert_eq!(crashed.read::<u8>(PPtr::new(128)), 0xab);
        assert_eq!(crashed.read::<u8>(PPtr::new(191)), 0xab);
    }

    #[test]
    fn flush_snapshots_at_clwb_time() {
        let r = PmemRegion::new_tracked(4096);
        r.write(PPtr::new(0), 0xaaaa_u16);
        r.flush(PPtr::new(0), 2);
        // Overwrite after the clwb but before the fence: the clwb'd value
        // is what lands on media (conservative deterministic model).
        r.write(PPtr::new(0), 0xbbbb_u16);
        r.fence();
        let crashed = r.simulate_crash();
        assert_eq!(crashed.read::<u16>(PPtr::new(0)), 0xaaaa);
    }

    #[test]
    fn crash_image_remount_preserves_tracking() {
        let r = PmemRegion::new_tracked(8192);
        r.write(PPtr::new(10), 42u8);
        r.persist(PPtr::new(10), 1);
        let c1 = r.simulate_crash();
        assert_eq!(c1.read::<u8>(PPtr::new(10)), 42);
        // The remounted region keeps tracking: new unflushed writes are lost again.
        c1.write(PPtr::new(20), 7u8);
        let c2 = c1.simulate_crash();
        assert_eq!(c2.read::<u8>(PPtr::new(10)), 42);
        assert_eq!(c2.read::<u8>(PPtr::new(20)), 0);
    }

    #[test]
    fn unpersisted_line_diagnostics() {
        let r = PmemRegion::new_tracked(4096);
        assert_eq!(r.unpersisted_lines(), 0);
        r.write(PPtr::new(0), 1u8);
        r.write(PPtr::new(200), 1u8);
        assert_eq!(r.unpersisted_lines(), 2);
        r.persist(PPtr::new(0), 1);
        assert_eq!(r.unpersisted_lines(), 1);
        r.persist(PPtr::new(200), 1);
        assert_eq!(r.unpersisted_lines(), 0);
    }

    #[test]
    fn fault_plan_cuts_power_at_boundary() {
        // A three-fence protocol: each fence persists one counter value.
        let run = |r: &PmemRegion| {
            for v in 1u64..=3 {
                r.write(PPtr::new(0), v);
                r.persist(PPtr::new(0), 8);
            }
        };
        // Recording run counts the boundaries.
        let r = PmemRegion::new_tracked(4096);
        r.arm_faults(FaultPlan::record());
        run(&r);
        assert_eq!(r.fence_count(), 3);
        assert!(!r.powercut_tripped());
        // Replays: cutting after boundary i leaves exactly the i-th value.
        for cut in 0..=3u64 {
            let r = PmemRegion::new_tracked(4096);
            r.arm_faults(FaultPlan::cut_after(cut));
            run(&r);
            assert_eq!(r.powercut_tripped(), cut < 3);
            let crashed = r.simulate_crash();
            assert_eq!(crashed.read::<u64>(PPtr::new(0)), cut, "cut at boundary {cut}");
        }
    }

    #[test]
    fn scope_coalesces_fences_into_one() {
        let r = PmemRegion::new_tracked(4096);
        {
            let _scope = r.fence_scope();
            for i in 0u64..3 {
                r.write(PPtr::new(i * 64), 0xa0 + i);
                r.persist(PPtr::new(i * 64), 8);
            }
            // All three fences deferred: nothing on media yet.
            let crashed = r.simulate_crash();
            assert_eq!(crashed.read::<u64>(PPtr::new(0)), 0);
            let s = r.stats().snapshot();
            assert_eq!(s.fences, 0);
            assert_eq!(s.fences_elided, 3);
        }
        // Scope close issued the single group fence.
        let s = r.stats().snapshot();
        assert_eq!(s.fences, 1);
        let crashed = r.simulate_crash();
        for i in 0u64..3 {
            assert_eq!(crashed.read::<u64>(PPtr::new(i * 64)), 0xa0 + i);
        }
    }

    #[test]
    fn empty_scope_issues_no_fence() {
        let r = PmemRegion::new(4096);
        drop(r.fence_scope());
        assert_eq!(r.stats().snapshot().fences, 0);
    }

    #[test]
    fn fence_now_inside_scope_is_eager_and_clears_pending() {
        let r = PmemRegion::new_tracked(4096);
        {
            let _scope = r.fence_scope();
            r.write(PPtr::new(0), 7u64);
            r.persist(PPtr::new(0), 8); // deferred
            r.persist_now(PPtr::new(0), 8); // real boundary; retires the above too
            let crashed = r.simulate_crash();
            assert_eq!(crashed.read::<u64>(PPtr::new(0)), 7, "persist_now is durable in-scope");
            assert_eq!(r.stats().snapshot().fences, 1);
        }
        // The eager fence covered everything staged: no redundant close fence.
        assert_eq!(r.stats().snapshot().fences, 1);
    }

    #[test]
    fn commit_is_an_intra_scope_boundary() {
        // Boundary accounting (FaultPlan) must see commit() and the closing
        // fence, and none of the deferred ones.
        let r = PmemRegion::new_tracked(4096);
        r.arm_faults(FaultPlan::record());
        {
            let scope = r.fence_scope();
            r.write(PPtr::new(0), 1u64);
            r.persist(PPtr::new(0), 8); // deferred
            scope.commit(); // boundary 1
            r.write(PPtr::new(64), 2u64);
            r.persist(PPtr::new(64), 8); // deferred
        } // boundary 2
        assert_eq!(r.fence_count(), 2);
    }

    #[test]
    fn scopes_nest_and_only_outermost_fences() {
        let r = PmemRegion::new(4096);
        {
            let _outer = r.fence_scope();
            {
                let _inner = r.fence_scope();
                r.write(PPtr::new(0), 1u64);
                r.persist(PPtr::new(0), 8);
            }
            // Inner drop must not fence.
            assert_eq!(r.stats().snapshot().fences, 0);
            r.persist(PPtr::new(8), 8);
        }
        assert_eq!(r.stats().snapshot().fences, 1);
        assert_eq!(r.stats().snapshot().fences_elided, 2);
    }

    #[test]
    fn scope_is_per_thread_and_per_region() {
        let r = std::sync::Arc::new(PmemRegion::new(4096));
        let other = PmemRegion::new(4096);
        let _scope = r.fence_scope();
        // Another thread fencing the same region is unaffected by our scope.
        crossbeam::thread::scope(|s| {
            let r = &r;
            s.spawn(move |_| r.fence());
        })
        .unwrap();
        assert_eq!(r.stats().snapshot().fences, 1, "peer thread fence is real");
        // Another region on this thread is unaffected too.
        other.fence();
        assert_eq!(other.stats().snapshot().fences, 1);
        assert_eq!(other.stats().snapshot().fences_elided, 0);
    }

    #[test]
    fn stats_accumulate() {
        let r = PmemRegion::new(4096);
        r.write_from(PPtr::new(0), &[0u8; 100]);
        let mut buf = [0u8; 50];
        r.read_into(PPtr::new(0), &mut buf);
        r.nt_write_from(PPtr::new(512), &[1u8; 64]);
        r.persist(PPtr::new(0), 100);
        let s = r.stats().snapshot();
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 50);
        assert_eq!(s.bytes_nt_written, 64);
        assert_eq!(s.fences, 1);
        assert!(s.flushed_lines >= 2);
    }

    #[test]
    fn check_access_reports_oob() {
        let r = PmemRegion::new(4096);
        assert!(r.check_access(PPtr::new(0), 4096, false).is_ok());
        assert!(matches!(
            r.check_access(PPtr::new(4000), 200, false),
            Err(PmemError::OutOfBounds { .. })
        ));
    }

    /// A unique temp path per test (no external tempfile dependency).
    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "simurgh-region-{}-{}-{}.pmem",
            tag,
            std::process::id(),
            n
        ))
    }

    struct TempFile(std::path::PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn file_backing_roundtrip_and_persistence_across_mappings() {
        let path = TempFile(temp_path("rt"));
        {
            let r = RegionBuilder::new(8192).file(&path.0).build().unwrap();
            assert!(r.is_file_backed());
            assert_eq!(r.file_path(), Some(path.0.as_path()));
            r.write(PPtr::new(100), 0xfeed_face_u32);
            r.atomic_u64(PPtr::new(4096)).store(77, Ordering::SeqCst);
            r.persist(PPtr::new(100), 4);
        } // unmapped
        let r2 = RegionBuilder::open_file(&path.0).build().unwrap();
        assert_eq!(r2.len(), 8192);
        assert_eq!(r2.read::<u32>(PPtr::new(100)), 0xfeed_face);
        assert_eq!(r2.atomic_u64(PPtr::new(4096)).load(Ordering::SeqCst), 77);
    }

    #[test]
    fn two_mappings_of_one_file_share_bytes() {
        // Two PmemRegion instances on the same file model two processes:
        // stores through one mapping are visible through the other.
        let path = TempFile(temp_path("share"));
        let a = RegionBuilder::new(4096).file(&path.0).build().unwrap();
        let b = RegionBuilder::new(4096).file(&path.0).build().unwrap();
        a.atomic_u64(PPtr::new(64)).store(42, Ordering::SeqCst);
        assert_eq!(b.atomic_u64(PPtr::new(64)).load(Ordering::SeqCst), 42);
        b.write(PPtr::new(200), 7u8);
        assert_eq!(a.read::<u8>(PPtr::new(200)), 7);
    }

    #[test]
    fn mismatched_length_is_typed_error() {
        let path = TempFile(temp_path("mismatch"));
        drop(RegionBuilder::new(8192).file(&path.0).build().unwrap());
        // Reopen at a different size: must be rejected, not resized.
        let err = RegionBuilder::new(4096).file(&path.0).build().unwrap_err();
        assert_eq!(err, PmemError::SizeMismatch { file_len: 8192, requested: 4096 });
        // ... and an image of the wrong size must not truncate the file.
        let err =
            RegionBuilder::new(0).from_image(vec![0u8; 4096]).file(&path.0).build().unwrap_err();
        assert_eq!(err, PmemError::SizeMismatch { file_len: 8192, requested: 4096 });
        assert_eq!(std::fs::metadata(&path.0).unwrap().len(), 8192, "file untouched");
    }

    #[test]
    fn adopting_a_smaller_file_grows_it_in_place() {
        // Aged-image adoption: reopening an existing region file at a larger
        // size grows the file, preserves the old bytes, and zero-fills the
        // new tail. Shrinking (covered above) stays a typed error.
        let path = TempFile(temp_path("grow"));
        {
            let r = RegionBuilder::new(8192).file(&path.0).build().unwrap();
            r.write(PPtr::new(64), 0xabad_cafe_u32);
            r.persist(PPtr::new(64), 4);
        }
        let r = RegionBuilder::new(4 * 8192).file(&path.0).build().unwrap();
        assert_eq!(r.len(), 4 * 8192);
        assert_eq!(std::fs::metadata(&path.0).unwrap().len(), 4 * 8192);
        assert_eq!(r.read::<u32>(PPtr::new(64)), 0xabad_cafe, "old bytes kept");
        assert_eq!(r.read::<u64>(PPtr::new(3 * 8192)), 0, "new tail zeroed");
    }

    #[test]
    fn open_file_rejects_missing_empty_and_ragged_files() {
        let missing = temp_path("missing");
        assert!(matches!(
            RegionBuilder::open_file(&missing).build(),
            Err(PmemError::BadFile { .. })
        ));
        let path = TempFile(temp_path("ragged"));
        std::fs::write(&path.0, vec![0u8; 100]).unwrap(); // not a page multiple
        assert!(matches!(
            RegionBuilder::open_file(&path.0).build(),
            Err(PmemError::BadFile { .. })
        ));
        std::fs::write(&path.0, b"").unwrap();
        assert!(matches!(
            RegionBuilder::open_file(&path.0).build(),
            Err(PmemError::BadFile { .. })
        ));
    }

    #[test]
    fn from_image_materializes_file() {
        let path = TempFile(temp_path("img"));
        let mut img = vec![0u8; 8192];
        img[4100] = 0xcd;
        drop(RegionBuilder::new(0).from_image(img).file(&path.0).build().unwrap());
        let r = RegionBuilder::open_file(&path.0).build().unwrap();
        assert_eq!(r.read::<u8>(PPtr::new(4100)), 0xcd);
    }

    #[test]
    fn fence_accounting_is_per_mapping() {
        // Satellite: FaultPlan boundary counting lives in the region
        // *instance* (per process), not in the shared mapping. A second
        // mount fencing away must not advance — let alone trip — the first
        // mount's armed plan.
        let path = TempFile(temp_path("fence"));
        let a = RegionBuilder::new(4096)
            .file(&path.0)
            .mode(TrackMode::Tracked)
            .build()
            .unwrap();
        let b = RegionBuilder::new(4096)
            .file(&path.0)
            .mode(TrackMode::Tracked)
            .build()
            .unwrap();
        a.arm_faults(FaultPlan::cut_after(2));
        b.arm_faults(FaultPlan::record());
        for _ in 0..5 {
            b.fence();
        }
        assert_eq!(a.fence_count(), 0, "peer fences leaked into our plan");
        assert!(!a.powercut_tripped(), "peer fences tripped our powercut");
        assert_eq!(b.fence_count(), 5);
        assert_eq!(a.stats().snapshot().fences, 0, "stats are per mapping too");
        a.fence();
        a.fence();
        a.fence();
        assert_eq!(a.fence_count(), 3);
        assert!(a.powercut_tripped(), "own fences still drive own plan");
    }

    #[test]
    fn tracked_file_region_keeps_crash_semantics() {
        // The crash tracker composes with file backing: unflushed stores
        // still vanish from the media image (per-process media model).
        let path = TempFile(temp_path("tracked"));
        let r = RegionBuilder::new(4096)
            .file(&path.0)
            .mode(TrackMode::Tracked)
            .build()
            .unwrap();
        r.write(PPtr::new(0), 0x11u8);
        assert_eq!(r.media_image()[0], 0, "unfenced store not on media");
        r.persist(PPtr::new(0), 1);
        assert_eq!(r.media_image()[0], 0x11);
    }

    #[test]
    fn concurrent_atomic_increments() {
        let r = std::sync::Arc::new(PmemRegion::new(4096));
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let r = &r;
                s.spawn(move |_| {
                    for _ in 0..1000 {
                        r.atomic_u64(PPtr::new(0)).fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(r.read::<u64>(PPtr::new(0)), 4000);
    }
}
