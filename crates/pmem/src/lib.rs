//! Emulated non-volatile main memory (NVMM) for the Simurgh reproduction.
//!
//! The paper evaluates Simurgh on Intel Optane DC persistent memory mapped
//! directly into application address spaces. This crate provides the software
//! substitute: a byte-addressable region addressed through *persistent
//! pointers* (offsets), with the exact persistence primitives the paper's
//! protocols rely on:
//!
//! * regular and non-temporal stores,
//! * cache-line write-back (`clwb`) and store fences (`sfence`),
//! * 8/32/64-bit atomic access for the lock-free metadata protocols,
//! * an optional **crash tracker** that maintains a separate "media" image so
//!   that a simulated power failure only preserves lines that were flushed
//!   *and* fenced — letting tests observe every torn intermediate state of
//!   the paper's Fig. 5 protocols,
//! * an optional per-page [`AccessPolicy`] hook so the protected-function
//!   simulator can enforce that NVMM pages marked as kernel pages are only
//!   touched from privileged mode (paper §3.2),
//! * a calibrated [`clock::SpinClock`] used to inject modelled latencies
//!   (security-call costs, NVMM bandwidth) as real delays.
//!
//! Everything in the Simurgh stack — the file system, the baseline models and
//! the benchmark harness — goes through [`PmemRegion`].

pub mod clock;
pub mod layout;
pub mod pptr;
pub mod prot;
pub mod region;
pub mod stats;
pub mod tracker;

pub use clock::SpinClock;
pub use pptr::PPtr;
pub use prot::{AccessFault, AccessPolicy, PageFlags, PageTable};
pub use region::{FenceScope, PmemError, PmemRegion, Pod, RegionBuilder};
pub use stats::PmemStats;
pub use tracker::{FaultPlan, TrackMode};

/// Size of one emulated CPU cache line in bytes.
pub const CACHE_LINE: usize = 64;

/// Size of one emulated page in bytes (the protection granularity).
pub const PAGE_SIZE: usize = 4096;
