//! Region layout carving.
//!
//! Mkfs-time helper that deals out aligned, non-overlapping sub-ranges of a
//! region (superblock, allocator bitmaps, metadata pools, data area). Purely
//! arithmetic — it never touches memory — so it is reusable by the Simurgh
//! core and every baseline model.

use crate::{PPtr, PAGE_SIZE};

/// One carved sub-range of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    pub start: PPtr,
    pub len: u64,
}

impl Extent {
    /// Exclusive end offset.
    pub fn end(&self) -> PPtr {
        self.start.add(self.len)
    }

    /// Whether `p` falls inside this extent.
    pub fn contains(&self, p: PPtr) -> bool {
        p.off() >= self.start.off() && p.off() < self.end().off()
    }
}

/// A monotonic carver over `[0, capacity)`.
#[derive(Debug)]
pub struct Carver {
    cursor: u64,
    capacity: u64,
}

/// Error carving a layout: the region is too small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfSpace {
    pub requested: u64,
    pub available: u64,
}

impl std::fmt::Display for OutOfSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "layout carve of {} bytes exceeds remaining {} bytes", self.requested, self.available)
    }
}

impl std::error::Error for OutOfSpace {}

impl Carver {
    /// A carver over a region of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Carver { cursor: 0, capacity }
    }

    /// Carves `len` bytes aligned to `align` (power of two).
    pub fn take(&mut self, len: u64, align: u64) -> Result<Extent, OutOfSpace> {
        let start = PPtr::new(self.cursor).align_up(align);
        let end = start.off().checked_add(len).ok_or(OutOfSpace {
            requested: len,
            available: self.capacity - self.cursor,
        })?;
        if end > self.capacity {
            return Err(OutOfSpace { requested: len, available: self.capacity.saturating_sub(start.off()) });
        }
        self.cursor = end;
        Ok(Extent { start, len })
    }

    /// Carves whole pages.
    pub fn take_pages(&mut self, pages: u64) -> Result<Extent, OutOfSpace> {
        self.take(pages * PAGE_SIZE as u64, PAGE_SIZE as u64)
    }

    /// Everything not yet carved, page aligned.
    pub fn remainder(&mut self) -> Result<Extent, OutOfSpace> {
        let start = PPtr::new(self.cursor).align_up(PAGE_SIZE as u64);
        if start.off() >= self.capacity {
            return Err(OutOfSpace { requested: PAGE_SIZE as u64, available: 0 });
        }
        let len = self.capacity - start.off();
        self.cursor = self.capacity;
        Ok(Extent { start, len })
    }

    /// Bytes handed out or skipped so far.
    pub fn used(&self) -> u64 {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carves_are_disjoint_and_aligned() {
        let mut c = Carver::new(1 << 20);
        let a = c.take(100, 64).unwrap();
        let b = c.take(4096, 4096).unwrap();
        let d = c.take_pages(2).unwrap();
        assert!(a.start.is_aligned(64));
        assert!(b.start.is_aligned(4096));
        assert!(d.start.is_aligned(4096));
        assert!(a.end().off() <= b.start.off());
        assert!(b.end().off() <= d.start.off());
    }

    #[test]
    fn remainder_takes_rest() {
        let mut c = Carver::new(4 * PAGE_SIZE as u64);
        c.take_pages(1).unwrap();
        let rest = c.remainder().unwrap();
        assert_eq!(rest.start.off(), PAGE_SIZE as u64);
        assert_eq!(rest.len, 3 * PAGE_SIZE as u64);
        assert!(c.remainder().is_err());
    }

    #[test]
    fn overflow_is_out_of_space() {
        let mut c = Carver::new(1000);
        assert!(c.take(2000, 8).is_err());
        assert!(c.take(u64::MAX, 8).is_err());
        let e = c.take(512, 8).unwrap();
        assert!(e.contains(PPtr::new(511)));
        assert!(!e.contains(PPtr::new(512)));
    }
}
