//! Crash tracker: models the volatile-cache / durable-media split.
//!
//! Real NVMM sits behind the CPU cache hierarchy: a store is *visible* to
//! other cores immediately but *durable* only once its cache line has been
//! written back (`clwb`) and the write-back has been ordered (`sfence`).
//! Every crash-consistency argument in the paper (§4.3, Fig. 5) is an
//! argument about which lines have crossed that boundary.
//!
//! In tracked mode the region keeps a second, *media* image. `clwb`
//! snapshots the addressed lines from live memory into a staging queue;
//! `sfence` commits the queue to the media image. A simulated crash discards
//! live memory and restarts from the media image — so a test can stop a
//! protocol between any two steps and observe exactly the state a real power
//! failure would leave behind.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::CACHE_LINE;

/// Whether a region tracks persistence for crash simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackMode {
    /// Direct access, no media image. Use for benchmarks.
    #[default]
    Raw,
    /// Maintain a media image; stores survive a crash only when flushed and
    /// fenced. Use for crash-consistency tests.
    Tracked,
}

struct StagedLine {
    line: usize,
    /// Dirty-version of the line at `clwb` time; used to keep the dirty-line
    /// diagnostic exact when a line is rewritten between `clwb` and `sfence`.
    version: Option<u64>,
    data: [u8; CACHE_LINE],
}

struct TrackState {
    media: Box<[u8]>,
    staged: Vec<StagedLine>,
    /// line index -> version of the latest unpersisted store to it.
    dirty: HashMap<usize, u64>,
    next_version: u64,
}

/// The tracking state attached to a [`crate::PmemRegion`] in tracked mode.
pub struct Tracker {
    state: Mutex<TrackState>,
}

impl Tracker {
    pub(crate) fn new(initial: Vec<u8>) -> Self {
        Tracker {
            state: Mutex::new(TrackState {
                media: initial.into_boxed_slice(),
                staged: Vec::new(),
                dirty: HashMap::new(),
                next_version: 1,
            }),
        }
    }

    /// Records that `[off, off+len)` was touched by cached stores.
    pub(crate) fn mark_dirty(&self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let mut st = self.state.lock();
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        for line in first..=last {
            let v = st.next_version;
            st.next_version += 1;
            st.dirty.insert(line, v);
        }
    }

    /// Emulated `clwb` (or a non-temporal store): snapshots the addressed
    /// lines from live memory into the staging queue.
    ///
    /// # Safety contract (internal)
    /// `base` must point at a live allocation of `region_len` bytes; callers
    /// inside this crate guarantee that.
    pub(crate) fn stage(&self, base: *const u8, region_len: usize, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let mut st = self.state.lock();
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        for line in first..=last {
            let start = line * CACHE_LINE;
            debug_assert!(start + CACHE_LINE <= region_len);
            let mut data = [0u8; CACHE_LINE];
            // SAFETY: per the contract, base..base+region_len is live and the
            // line range is in bounds.
            unsafe { std::ptr::copy_nonoverlapping(base.add(start), data.as_mut_ptr(), CACHE_LINE) };
            let version = st.dirty.get(&line).copied();
            st.staged.push(StagedLine { line, version, data });
        }
    }

    /// Emulated `sfence`: commits every staged line to the media image.
    pub(crate) fn fence(&self) {
        let mut st = self.state.lock();
        let staged = std::mem::take(&mut st.staged);
        for s in staged {
            let start = s.line * CACHE_LINE;
            st.media[start..start + CACHE_LINE].copy_from_slice(&s.data);
            // Only clear the dirty diagnostic if the line was not rewritten
            // after the clwb that we just committed.
            if let Some(v) = s.version {
                if st.dirty.get(&s.line) == Some(&v) {
                    st.dirty.remove(&s.line);
                }
            }
        }
    }

    /// Copy of the durable image.
    pub(crate) fn media_image(&self) -> Vec<u8> {
        self.state.lock().media.to_vec()
    }

    /// Number of lines with stores that would currently be lost on a crash.
    pub(crate) fn dirty_line_count(&self) -> usize {
        self.state.lock().dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(buf: &[u8]) -> (*const u8, usize) {
        (buf.as_ptr(), buf.len())
    }

    #[test]
    fn fence_without_stage_is_noop() {
        let t = Tracker::new(vec![0u8; 256]);
        t.fence();
        assert_eq!(t.media_image(), vec![0u8; 256]);
    }

    #[test]
    fn stage_then_fence_commits() {
        let buf = vec![7u8; 256];
        let t = Tracker::new(vec![0u8; 256]);
        let (p, l) = live(&buf);
        t.stage(p, l, 0, 64);
        assert_eq!(t.media_image()[0], 0, "not durable before fence");
        t.fence();
        assert_eq!(t.media_image()[..64], [7u8; 64][..]);
        assert_eq!(t.media_image()[64], 0, "only the staged line committed");
    }

    #[test]
    fn dirty_version_survives_rewrite_after_clwb() {
        let buf = vec![1u8; 128];
        let t = Tracker::new(vec![0u8; 128]);
        let (p, l) = live(&buf);
        t.mark_dirty(0, 8);
        t.stage(p, l, 0, 8);
        // Rewrite the same line after the clwb but before the fence.
        t.mark_dirty(0, 8);
        t.fence();
        // The fence committed the older snapshot: the line is still dirty.
        assert_eq!(t.dirty_line_count(), 1);
    }

    #[test]
    fn dirty_cleared_when_fence_covers_latest_store() {
        let buf = vec![1u8; 128];
        let t = Tracker::new(vec![0u8; 128]);
        let (p, l) = live(&buf);
        t.mark_dirty(0, 8);
        t.stage(p, l, 0, 8);
        t.fence();
        assert_eq!(t.dirty_line_count(), 0);
    }

    #[test]
    fn spanning_range_touches_every_line() {
        let t = Tracker::new(vec![0u8; 512]);
        t.mark_dirty(60, 10); // crosses lines 0 and 1
        assert_eq!(t.dirty_line_count(), 2);
    }
}
