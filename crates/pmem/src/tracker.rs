//! Crash tracker: models the volatile-cache / durable-media split.
//!
//! Real NVMM sits behind the CPU cache hierarchy: a store is *visible* to
//! other cores immediately but *durable* only once its cache line has been
//! written back (`clwb`) and the write-back has been ordered (`sfence`).
//! Every crash-consistency argument in the paper (§4.3, Fig. 5) is an
//! argument about which lines have crossed that boundary.
//!
//! In tracked mode the region keeps a second, *media* image. `clwb`
//! snapshots the addressed lines from live memory into a staging queue;
//! `sfence` commits the queue to the media image. A simulated crash discards
//! live memory and restarts from the media image — so a test can stop a
//! protocol between any two steps and observe exactly the state a real power
//! failure would leave behind.
//!
//! On top of that sits the programmable [`FaultPlan`]: every `sfence` is a
//! *persistence boundary*, and the plan can (a) count the boundaries an
//! operation crosses during a recorded run and (b) on replay, cut the power
//! at the *i*-th boundary — the first `i` fences commit, every later fence
//! (and everything staged for it) is lost, exactly as if the power failed
//! between boundary `i` and boundary `i+1`. The crash-matrix harness
//! enumerates `i` over `0..N` and proves recovery from every one.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::CACHE_LINE;

/// Whether a region tracks persistence for crash simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackMode {
    /// Direct access, no media image. Use for benchmarks.
    #[default]
    Raw,
    /// Maintain a media image; stores survive a crash only when flushed and
    /// fenced. Use for crash-consistency tests.
    Tracked,
}

/// A programmable fault plan for a tracked region.
///
/// Armed with [`crate::PmemRegion::arm_faults`]; arming resets the region's
/// boundary counter so fences issued by setup work are not charged to the
/// operation under test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Power cut after this many committed fences: fences `1..=n` land on
    /// media, fence `n+1` and everything after it is lost. `None` means
    /// count boundaries only (recording mode).
    cut_after_fences: Option<u64>,
}

impl FaultPlan {
    /// Recording mode: count persistence boundaries, commit everything.
    pub fn record() -> Self {
        FaultPlan { cut_after_fences: None }
    }

    /// Replay mode: simulate a power cut at boundary `n` — the first `n`
    /// fences after arming commit to media, everything later is lost.
    /// `n = 0` loses every fence issued after arming.
    pub fn cut_after(n: u64) -> Self {
        FaultPlan { cut_after_fences: Some(n) }
    }

    /// The boundary this plan cuts at, if any.
    pub fn cut_point(&self) -> Option<u64> {
        self.cut_after_fences
    }
}

struct StagedLine {
    line: usize,
    /// Dirty-version of the line at `clwb` time; used to keep the dirty-line
    /// diagnostic exact when a line is rewritten between `clwb` and `sfence`.
    version: Option<u64>,
    data: [u8; CACHE_LINE],
}

struct TrackState {
    media: Box<[u8]>,
    staged: Vec<StagedLine>,
    /// line index -> version of the latest unpersisted store to it.
    dirty: HashMap<usize, u64>,
    next_version: u64,
    /// Active fault plan (counting is always on; the plan adds the cut).
    plan: FaultPlan,
    /// Fences committed (or, once frozen, attempted) since the last arm.
    fences: u64,
    /// The power cut has happened: the media image is frozen.
    frozen: bool,
}

/// The tracking state attached to a [`crate::PmemRegion`] in tracked mode.
pub struct Tracker {
    state: Mutex<TrackState>,
}

impl Tracker {
    pub(crate) fn new(initial: Vec<u8>) -> Self {
        Tracker {
            state: Mutex::new(TrackState {
                media: initial.into_boxed_slice(),
                staged: Vec::new(),
                dirty: HashMap::new(),
                next_version: 1,
                plan: FaultPlan::default(),
                fences: 0,
                frozen: false,
            }),
        }
    }

    /// Records that `[off, off+len)` was touched by cached stores.
    pub(crate) fn mark_dirty(&self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let mut st = self.state.lock();
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        for line in first..=last {
            let v = st.next_version;
            st.next_version += 1;
            st.dirty.insert(line, v);
        }
    }

    /// Emulated `clwb` (or a non-temporal store): snapshots the addressed
    /// lines from live memory into the staging queue.
    ///
    /// # Safety contract (internal)
    /// `base` must point at a live allocation of `region_len` bytes; callers
    /// inside this crate guarantee that.
    pub(crate) fn stage(&self, base: *const u8, region_len: usize, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let mut st = self.state.lock();
        if st.frozen {
            // Past the power cut: write-backs go nowhere.
            return;
        }
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        for line in first..=last {
            let start = line * CACHE_LINE;
            debug_assert!(start + CACHE_LINE <= region_len);
            let mut data = [0u8; CACHE_LINE];
            // SAFETY: per the contract, base..base+region_len is live and the
            // line range is in bounds.
            unsafe { std::ptr::copy_nonoverlapping(base.add(start), data.as_mut_ptr(), CACHE_LINE) };
            let version = st.dirty.get(&line).copied();
            st.staged.push(StagedLine { line, version, data });
        }
    }

    /// Emulated `sfence`: commits every staged line to the media image.
    ///
    /// Every call is one persistence boundary. When the armed [`FaultPlan`]
    /// cuts at boundary `n`, the `n+1`-th call freezes the media image
    /// instead of committing — the power died before this fence completed.
    pub(crate) fn fence(&self) {
        let mut st = self.state.lock();
        st.fences += 1;
        if st.frozen {
            st.staged.clear();
            return;
        }
        if let Some(cut) = st.plan.cut_point() {
            if st.fences > cut {
                st.frozen = true;
                st.staged.clear();
                return;
            }
        }
        let staged = std::mem::take(&mut st.staged);
        for s in staged {
            let start = s.line * CACHE_LINE;
            st.media[start..start + CACHE_LINE].copy_from_slice(&s.data);
            // Only clear the dirty diagnostic if the line was not rewritten
            // after the clwb that we just committed.
            if let Some(v) = s.version {
                if st.dirty.get(&s.line) == Some(&v) {
                    st.dirty.remove(&s.line);
                }
            }
        }
    }

    /// Copy of the durable image.
    pub(crate) fn media_image(&self) -> Vec<u8> {
        self.state.lock().media.to_vec()
    }

    /// Number of lines with stores that would currently be lost on a crash.
    pub(crate) fn dirty_line_count(&self) -> usize {
        self.state.lock().dirty.len()
    }

    /// Installs `plan`, resetting the boundary counter and thawing any
    /// previous cut. Staged-but-unfenced lines are dropped so the plan
    /// starts from a well-defined boundary.
    pub(crate) fn arm(&self, plan: FaultPlan) {
        let mut st = self.state.lock();
        st.plan = plan;
        st.fences = 0;
        st.frozen = false;
        st.staged.clear();
    }

    /// Persistence boundaries (fences) seen since the last arm (or since
    /// creation, if never armed).
    pub(crate) fn fence_count(&self) -> u64 {
        self.state.lock().fences
    }

    /// Whether the armed plan's power cut has happened.
    pub(crate) fn powercut_tripped(&self) -> bool {
        self.state.lock().frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(buf: &[u8]) -> (*const u8, usize) {
        (buf.as_ptr(), buf.len())
    }

    #[test]
    fn fence_without_stage_is_noop() {
        let t = Tracker::new(vec![0u8; 256]);
        t.fence();
        assert_eq!(t.media_image(), vec![0u8; 256]);
    }

    #[test]
    fn stage_then_fence_commits() {
        let buf = vec![7u8; 256];
        let t = Tracker::new(vec![0u8; 256]);
        let (p, l) = live(&buf);
        t.stage(p, l, 0, 64);
        assert_eq!(t.media_image()[0], 0, "not durable before fence");
        t.fence();
        assert_eq!(t.media_image()[..64], [7u8; 64][..]);
        assert_eq!(t.media_image()[64], 0, "only the staged line committed");
    }

    #[test]
    fn dirty_version_survives_rewrite_after_clwb() {
        let buf = vec![1u8; 128];
        let t = Tracker::new(vec![0u8; 128]);
        let (p, l) = live(&buf);
        t.mark_dirty(0, 8);
        t.stage(p, l, 0, 8);
        // Rewrite the same line after the clwb but before the fence.
        t.mark_dirty(0, 8);
        t.fence();
        // The fence committed the older snapshot: the line is still dirty.
        assert_eq!(t.dirty_line_count(), 1);
    }

    #[test]
    fn dirty_cleared_when_fence_covers_latest_store() {
        let buf = vec![1u8; 128];
        let t = Tracker::new(vec![0u8; 128]);
        let (p, l) = live(&buf);
        t.mark_dirty(0, 8);
        t.stage(p, l, 0, 8);
        t.fence();
        assert_eq!(t.dirty_line_count(), 0);
    }

    #[test]
    fn spanning_range_touches_every_line() {
        let t = Tracker::new(vec![0u8; 512]);
        t.mark_dirty(60, 10); // crosses lines 0 and 1
        assert_eq!(t.dirty_line_count(), 2);
    }

    #[test]
    fn fence_count_resets_on_arm() {
        let t = Tracker::new(vec![0u8; 256]);
        t.fence();
        t.fence();
        assert_eq!(t.fence_count(), 2);
        t.arm(FaultPlan::record());
        assert_eq!(t.fence_count(), 0);
        t.fence();
        assert_eq!(t.fence_count(), 1);
        assert!(!t.powercut_tripped());
    }

    #[test]
    fn cut_after_commits_exactly_n_fences() {
        let buf = vec![9u8; 256];
        let t = Tracker::new(vec![0u8; 256]);
        let (p, l) = live(&buf);
        t.arm(FaultPlan::cut_after(1));
        // Fence 1 commits line 0.
        t.stage(p, l, 0, 64);
        t.fence();
        // Fence 2 is the cut: line 1 is lost.
        t.stage(p, l, 64, 64);
        t.fence();
        assert!(t.powercut_tripped());
        // Fence 3 after the cut changes nothing either.
        t.stage(p, l, 128, 64);
        t.fence();
        let media = t.media_image();
        assert_eq!(media[..64], [9u8; 64][..], "boundary 1 committed");
        assert_eq!(media[64..192], [0u8; 128][..], "everything after the cut lost");
    }

    #[test]
    fn cut_after_zero_loses_every_fence() {
        let buf = vec![5u8; 128];
        let t = Tracker::new(vec![0u8; 128]);
        let (p, l) = live(&buf);
        t.arm(FaultPlan::cut_after(0));
        t.stage(p, l, 0, 64);
        t.fence();
        assert!(t.powercut_tripped());
        assert_eq!(t.media_image(), vec![0u8; 128]);
    }

    #[test]
    fn rearming_thaws_a_frozen_tracker() {
        let buf = vec![3u8; 128];
        let t = Tracker::new(vec![0u8; 128]);
        let (p, l) = live(&buf);
        t.arm(FaultPlan::cut_after(0));
        t.fence();
        assert!(t.powercut_tripped());
        t.arm(FaultPlan::record());
        t.stage(p, l, 0, 64);
        t.fence();
        assert_eq!(t.media_image()[..64], [3u8; 64][..]);
    }
}
