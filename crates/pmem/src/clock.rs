//! Calibrated cycle/time injection and the NVMM performance model.
//!
//! The paper measured its proposed instructions on gem5 and then evaluated
//! the file system on real hardware by **adding the measured 46-cycle
//! jmpp/pret delta to every Simurgh call** (§5.1). We take the same
//! approach in reverse: modelled costs (security calls, syscalls, media
//! latency) are injected as real busy-wait delays so that throughput
//! comparisons between file systems include them.
//!
//! [`SpinClock`] calibrates how many `spin_loop` iterations one microsecond
//! takes on this host, once, and then converts "N cycles at 2.5 GHz" into a
//! spin count. Delays below the calibration resolution still execute a
//! proportional number of iterations, so even an 18-ns (46-cycle) delay has
//! a real, repeatable cost.

use std::hint::spin_loop;
use std::sync::OnceLock;
use std::time::Instant;

/// Clock frequency of the paper's evaluation machine (Xeon Gold 5212/5215).
pub const PAPER_GHZ: f64 = 2.5;

/// A calibrated busy-wait clock.
#[derive(Debug, Clone, Copy)]
pub struct SpinClock {
    spins_per_us: f64,
}

impl SpinClock {
    /// Calibrates the spin loop against `Instant`. Takes a few milliseconds;
    /// do it once and reuse (see [`SpinClock::global`]).
    pub fn calibrate() -> Self {
        // Warm up.
        for _ in 0..10_000 {
            spin_loop();
        }
        let mut best = f64::MAX;
        for _ in 0..3 {
            let iters: u64 = 2_000_000;
            let start = Instant::now();
            for _ in 0..iters {
                spin_loop();
            }
            let us = start.elapsed().as_secs_f64() * 1e6;
            if us > 0.0 {
                best = best.min(us / iters as f64);
            }
        }
        let per_iter_us = if best.is_finite() && best > 0.0 { best } else { 1e-3 };
        SpinClock { spins_per_us: 1.0 / per_iter_us }
    }

    /// The lazily calibrated process-wide clock.
    pub fn global() -> &'static SpinClock {
        static GLOBAL: OnceLock<SpinClock> = OnceLock::new();
        GLOBAL.get_or_init(SpinClock::calibrate)
    }

    /// Busy-waits approximately `ns` nanoseconds.
    #[inline]
    pub fn delay_ns(&self, ns: f64) {
        let spins = (self.spins_per_us * ns / 1000.0) as u64;
        for _ in 0..spins {
            spin_loop();
        }
    }

    /// Busy-waits for `cycles` CPU cycles at `ghz` GHz.
    #[inline]
    pub fn delay_cycles(&self, cycles: u64, ghz: f64) {
        self.delay_ns(cycles as f64 / ghz)
    }

    /// Calibrated spin-loop iterations per microsecond (diagnostic).
    pub fn spins_per_us(&self) -> f64 {
        self.spins_per_us
    }
}

/// Performance envelope of the emulated NVMM device, used (a) to draw the
/// "max bandwidth" reference lines of Fig. 6 / Fig. 7i and (b) optionally to
/// throttle bulk data transfers so DRAM does not masquerade as Optane.
///
/// Defaults approximate six interleaved Optane DC 128-GB DIMMs as measured
/// in the literature: reads ~6.6 GB/s/DIMM sequential, writes ~2.3 GB/s/DIMM,
/// with the paper's setup saturating around 40 GB/s read / 14 GB/s write.
#[derive(Debug, Clone, Copy)]
pub struct NvmmPerfModel {
    /// Aggregate sequential read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Aggregate write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Idle read latency, nanoseconds (Optane ~300 ns medium-size reads).
    pub read_latency_ns: f64,
    /// Write (to WPQ) latency, nanoseconds.
    pub write_latency_ns: f64,
}

impl Default for NvmmPerfModel {
    fn default() -> Self {
        NvmmPerfModel {
            read_bw: 40.0e9,
            write_bw: 14.0e9,
            read_latency_ns: 170.0,
            write_latency_ns: 90.0,
        }
    }
}

impl NvmmPerfModel {
    /// Modelled duration of a read of `bytes`.
    pub fn read_ns(&self, bytes: usize) -> f64 {
        self.read_latency_ns + bytes as f64 / self.read_bw * 1e9
    }

    /// Modelled duration of a write of `bytes`.
    pub fn write_ns(&self, bytes: usize) -> f64 {
        self.write_latency_ns + bytes as f64 / self.write_bw * 1e9
    }

    /// Max achievable random-read throughput in GiB/s for the reference line
    /// of Fig. 6 / 7i, given the access granularity.
    pub fn max_read_gibs(&self, access_bytes: usize) -> f64 {
        let per_access_ns = self.read_ns(access_bytes);
        access_bytes as f64 / (per_access_ns * 1e-9) / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_positive() {
        let c = SpinClock::calibrate();
        assert!(c.spins_per_us() > 0.0);
    }

    #[test]
    fn delay_scales_roughly_with_duration() {
        let c = SpinClock::global();
        let start = Instant::now();
        for _ in 0..100 {
            c.delay_ns(10_000.0); // 1 ms total
        }
        let elapsed = start.elapsed().as_secs_f64();
        // Very loose bounds: busy environments can stretch this.
        assert!(elapsed > 0.0003, "1ms of requested delay took {elapsed}s");
    }

    #[test]
    fn zero_delay_is_fine() {
        SpinClock::global().delay_ns(0.0);
        SpinClock::global().delay_cycles(0, PAPER_GHZ);
    }

    #[test]
    fn perf_model_bandwidth_math() {
        let m = NvmmPerfModel::default();
        // Latency dominates small accesses, bandwidth dominates large ones.
        assert!(m.read_ns(64) < m.read_ns(1 << 20));
        let big = m.read_ns(1 << 30);
        let seconds = big * 1e-9;
        let gbps = (1u64 << 30) as f64 / seconds;
        assert!((gbps - 40.0e9).abs() / 40.0e9 < 0.01, "1 GiB read ~ line rate");
        assert!(m.max_read_gibs(4096) > 0.0);
        assert!(m.max_read_gibs(1 << 20) > m.max_read_gibs(4096));
    }
}
