//! Persistent pointers: region-relative offsets.
//!
//! NVMM is mapped at an unpredictable virtual address in every process
//! (ASLR), so Simurgh replaces absolute pointers with *relative offsets from
//! the start of the NVMM device* (paper §4.1). [`PPtr`] is that offset. The
//! all-zero value is reserved as the null pointer, which the paper's delete
//! protocol depends on (a zeroed slot means "no entry").

use std::fmt;

/// A persistent pointer: a byte offset from the start of a [`PmemRegion`]
/// (`crate::PmemRegion`). Offset `0` is the null pointer and always points at
/// the superblock area, which never holds an allocatable object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(transparent)]
pub struct PPtr(pub u64);

impl PPtr {
    /// The null persistent pointer.
    pub const NULL: PPtr = PPtr(0);

    /// Creates a persistent pointer from a raw offset.
    #[inline]
    pub const fn new(off: u64) -> Self {
        PPtr(off)
    }

    /// Raw byte offset.
    #[inline]
    pub const fn off(self) -> u64 {
        self.0
    }

    /// Whether this is the null pointer.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Offset arithmetic; panics on overflow in debug builds.
    #[inline]
    pub const fn add(self, bytes: u64) -> Self {
        PPtr(self.0 + bytes)
    }

    /// Checked offset arithmetic.
    #[inline]
    pub fn checked_add(self, bytes: u64) -> Option<Self> {
        self.0.checked_add(bytes).map(PPtr)
    }

    /// Whether the pointer is aligned to `align` bytes (`align` must be a
    /// power of two).
    #[inline]
    pub const fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// Rounds the pointer up to the next multiple of `align`.
    #[inline]
    pub const fn align_up(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two());
        PPtr((self.0 + align - 1) & !(align - 1))
    }

    /// Index of the emulated 4-KB page this pointer falls into.
    #[inline]
    pub const fn page(self) -> usize {
        (self.0 / crate::PAGE_SIZE as u64) as usize
    }

    /// Index of the emulated cache line this pointer falls into.
    #[inline]
    pub const fn line(self) -> usize {
        (self.0 / crate::CACHE_LINE as u64) as usize
    }
}

impl fmt::Debug for PPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PPtr(NULL)")
        } else {
            write!(f, "PPtr({:#x})", self.0)
        }
    }
}

impl fmt::Display for PPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for PPtr {
    fn from(off: u64) -> Self {
        PPtr(off)
    }
}

impl From<PPtr> for u64 {
    fn from(p: PPtr) -> Self {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero_and_default() {
        assert!(PPtr::NULL.is_null());
        assert_eq!(PPtr::default(), PPtr::NULL);
        assert!(!PPtr::new(1).is_null());
    }

    #[test]
    fn arithmetic() {
        let p = PPtr::new(4096);
        assert_eq!(p.add(64).off(), 4160);
        assert_eq!(p.checked_add(u64::MAX), None);
        assert_eq!(p.checked_add(4), Some(PPtr::new(4100)));
    }

    #[test]
    fn alignment() {
        assert!(PPtr::new(128).is_aligned(64));
        assert!(!PPtr::new(65).is_aligned(64));
        assert_eq!(PPtr::new(65).align_up(64), PPtr::new(128));
        assert_eq!(PPtr::new(64).align_up(64), PPtr::new(64));
    }

    #[test]
    fn page_and_line_indices() {
        assert_eq!(PPtr::new(0).page(), 0);
        assert_eq!(PPtr::new(4096).page(), 1);
        assert_eq!(PPtr::new(8191).page(), 1);
        assert_eq!(PPtr::new(63).line(), 0);
        assert_eq!(PPtr::new(64).line(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:?}", PPtr::NULL), "PPtr(NULL)");
        assert_eq!(format!("{}", PPtr::new(0x1000)), "0x1000");
    }
}
