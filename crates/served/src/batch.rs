//! The server-side extension of `FileSystem`: pipeline batching and the
//! gateway counter surface.

use simurgh_core::obs::GatewayStats;
use simurgh_core::SimurghFs;
use simurgh_fsapi::reffs::RefFs;
use simurgh_fsapi::FileSystem;

/// Counters for file systems that do not carry an `ObsRegistry` (the
/// in-memory reference oracle in conformance tests).
static FALLBACK_STATS: GatewayStats = GatewayStats::new();

/// A file system the gateway can serve: `FileSystem` plus two hooks the
/// wire front end needs — a persistence batch around a drained pipeline
/// burst and the counter battery to report into.
///
/// The default implementations are no-ops, so any `FileSystem` is
/// servable; `SimurghFs` overrides both to coalesce the burst's fences
/// into one [`FenceScope`] and to surface the daemon's counters through
/// `paper obs`.
///
/// [`FenceScope`]: simurgh_pmem::region::FenceScope
pub trait Served: FileSystem + 'static {
    /// Runs `f` — every op of one drained pipeline burst — under one
    /// persistence batch. Implementations may defer intermediate fences
    /// to the end of the batch, but each op's own commit points must keep
    /// their program order (crash states remain a subset of the eager
    /// ones; see the group-commit notes in DESIGN.md §4.6).
    fn with_batch<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// The gateway counter battery the server reports into.
    fn gateway_stats(&self) -> &GatewayStats {
        &FALLBACK_STATS
    }
}

impl Served for RefFs {}

impl Served for SimurghFs {
    /// One fence scope around the whole burst: persists inside stage
    /// their clwbs and elide per-op sfences into the commit below. Inner
    /// scopes opened by individual ops nest (their commits fence
    /// eagerly), so ordering boundaries inside an op are untouched.
    fn with_batch<R>(&self, f: impl FnOnce() -> R) -> R {
        let scope = self.region().fence_scope();
        let r = f();
        scope.commit();
        r
    }

    fn gateway_stats(&self) -> &GatewayStats {
        &self.obs().gateway
    }
}
