//! The daemon proper: one nonblocking acceptor plus a fixed pool of epoll
//! shard loops. No per-connection OS thread anywhere — a shard owns its
//! connections outright and runs their decoded bursts inline, so a
//! connection's ops execute in order with no cross-thread handoff.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::queue::SegQueue;
use simurgh_core::obs::GatewayStats;
use simurgh_fsapi::wire::{self, Hello, HelloOk, Request, Response, PROTOCOL_VERSION};
use simurgh_fsapi::{Credentials, ProcCtx};

use crate::batch::Served;
use crate::dispatch::{dispatch, ConnFds};
use crate::sys;

/// Epoll token of a shard's wake-up pipe (connection ids are `u32`, so
/// this can never collide).
const WAKE_TOKEN: u64 = u64::MAX;

/// Replies buffered beyond this are a misbehaving reader; the connection
/// is dropped rather than ballooning the daemon's heap.
const MAX_PENDING_REPLY: usize = 32 << 20;

/// Tuning knobs of a gateway instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path to listen on (removed and re-created at start).
    pub socket: PathBuf,
    /// Number of epoll shard loops (each an OS thread serving many
    /// connections).
    pub shards: usize,
    /// Admission limit: decoded-but-unanswered ops across every
    /// connection; the excess is refused with a typed `Busy` response.
    pub max_in_flight: u32,
    /// Connections with no traffic for this long are closed and their fd
    /// tables reaped — also the half-open reaper (a peer that died
    /// without FIN simply goes quiet).
    pub idle_timeout: Duration,
}

impl ServerConfig {
    /// Defaults: shards bounded by the machine, 1024 in-flight ops, 30 s
    /// idle timeout.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServerConfig {
            socket: socket.into(),
            shards: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(4),
            max_in_flight: 1024,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Per-connection state owned by exactly one shard.
struct Conn {
    stream: UnixStream,
    /// Server-assigned id; doubles as the `pid` word scoping this
    /// connection's descriptors (never client-supplied).
    ctx: ProcCtx,
    hello_done: bool,
    /// Unconsumed request bytes.
    rd: Vec<u8>,
    /// Encoded replies not yet written, from `wr_pos`.
    wr: Vec<u8>,
    wr_pos: usize,
    /// Whether `EPOLLOUT` interest is currently armed.
    want_out: bool,
    fds: ConnFds,
    last_rx: Instant,
}

impl Conn {
    fn new(id: u32, stream: UnixStream) -> Self {
        Conn {
            stream,
            ctx: ProcCtx::new(id, Credentials::ROOT),
            hello_done: false,
            rd: Vec::new(),
            wr: Vec::new(),
            wr_pos: 0,
            want_out: false,
            fds: ConnFds::new(),
            last_rx: Instant::now(),
        }
    }

    fn id(&self) -> u32 {
        self.ctx.pid
    }
}

/// Entry point: [`Server::start`] spawns the daemon threads and returns a
/// [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `cfg.socket`, spawns the acceptor and shard threads, and
    /// returns the handle that owns them. The file system stays shared
    /// with the caller (tests fsck it after shutdown).
    pub fn start<F: Served + Send + Sync>(
        fs: Arc<F>,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        let running = Arc::new(AtomicBool::new(true));
        let nshards = cfg.shards.max(1);
        let mut threads = Vec::new();
        let mut wakes = Vec::new();
        let mut queues: Vec<Arc<SegQueue<(u32, UnixStream)>>> = Vec::new();
        for s in 0..nshards {
            let (wake_w, wake_r) = UnixStream::pair()?;
            wake_r.set_nonblocking(true)?;
            wake_w.set_nonblocking(true)?;
            let incoming: Arc<SegQueue<(u32, UnixStream)>> = Arc::new(SegQueue::new());
            queues.push(Arc::clone(&incoming));
            wakes.push(wake_w);
            let (fs, cfg, running) = (Arc::clone(&fs), cfg.clone(), Arc::clone(&running));
            threads.push(
                std::thread::Builder::new().name(format!("served-shard{s}")).spawn(move || {
                    if let Err(e) = shard_loop(&*fs, &cfg, &running, &incoming, &wake_r) {
                        eprintln!("simurgh-served: shard {s} failed: {e}");
                    }
                })?,
            );
        }
        {
            let (fs, running) = (Arc::clone(&fs), Arc::clone(&running));
            let wake_clones: Vec<UnixStream> =
                wakes.iter().map(UnixStream::try_clone).collect::<io::Result<_>>()?;
            threads.push(
                std::thread::Builder::new().name("served-accept".into()).spawn(move || {
                    acceptor(&*fs, listener, &running, &queues, &wake_clones);
                })?,
            );
        }
        Ok(ServerHandle { running, threads, wakes, socket: cfg.socket, stopped: false })
    }
}

/// Owns the daemon's threads; [`shutdown`](ServerHandle::shutdown) (or
/// drop) stops them, reaps every surviving connection and removes the
/// socket file.
pub struct ServerHandle {
    running: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    wakes: Vec<UnixStream>,
    socket: PathBuf,
    stopped: bool,
}

impl ServerHandle {
    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Stops accepting, drains the shards (reaping every connection's fd
    /// table) and joins all daemon threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.running.store(false, Ordering::Release);
        for w in &self.wakes {
            wake(w);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Nudges a shard out of `epoll_wait` (one byte down its wake pipe; a
/// full pipe means a wake is already pending, which is just as good).
fn wake(w: &UnixStream) {
    let mut wref = w;
    let _ = wref.write(&[1u8]);
}

fn acceptor<F: Served>(
    fs: &F,
    listener: UnixListener,
    running: &AtomicBool,
    queues: &[Arc<SegQueue<(u32, UnixStream)>>],
    wakes: &[UnixStream],
) {
    let stats = fs.gateway_stats();
    let mut next_id: u32 = 1;
    while running.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let id = next_id;
                // Ids are never reused within a u32 wrap; skipping 0
                // keeps "no id" representable in diagnostics.
                next_id = next_id.wrapping_add(1).max(1);
                GatewayStats::bump(&stats.connections);
                let shard = id as usize % queues.len();
                queues[shard].push((id, stream));
                wake(&wakes[shard]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("simurgh-served: accept failed: {e}");
                break;
            }
        }
    }
}

fn shard_loop<F: Served>(
    fs: &F,
    cfg: &ServerConfig,
    running: &AtomicBool,
    incoming: &SegQueue<(u32, UnixStream)>,
    wake_r: &UnixStream,
) -> io::Result<()> {
    let epfd = sys::create()?;
    sys::add(epfd, wake_r.as_raw_fd(), sys::EPOLLIN, WAKE_TOKEN)?;
    let stats = fs.gateway_stats();
    let mut conns: HashMap<u32, Conn> = HashMap::new();
    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 64];
    // The tick bounds both shutdown latency and idle-sweep granularity.
    let tick_ms = (cfg.idle_timeout.as_millis() / 4).clamp(10, 100) as i32;
    while running.load(Ordering::Acquire) {
        let n = sys::wait(epfd, &mut events, tick_ms)?;
        // Adopt connections handed over by the acceptor first, so a wake
        // for a new connection services it in the same iteration.
        while let Some((id, stream)) = incoming.pop() {
            stream.set_nonblocking(true)?;
            sys::add(epfd, stream.as_raw_fd(), sys::EPOLLIN | sys::EPOLLRDHUP, id as u64)?;
            conns.insert(id, Conn::new(id, stream));
        }
        for ev in events.iter().copied().take(n) {
            let (token, bits) = (ev.data, ev.events);
            if token == WAKE_TOKEN {
                let mut sink = [0u8; 64];
                let mut wref = wake_r;
                while matches!(wref.read(&mut sink), Ok(n) if n > 0) {}
                continue;
            }
            let id = token as u32;
            let Some(conn) = conns.get_mut(&id) else { continue };
            let mut alive = bits & sys::EPOLLERR == 0;
            if alive && bits & sys::EPOLLOUT != 0 {
                alive = flush_replies(epfd, conn).is_ok();
            }
            if alive && bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0 {
                alive = handle_readable(fs, stats, cfg, epfd, conn);
            }
            if !alive {
                let conn = conns.remove(&id).expect("conn present");
                close_conn(fs, stats, epfd, conn);
            }
        }
        // Idle / half-open sweep.
        let now = Instant::now();
        let expired: Vec<u32> = conns
            .iter()
            .filter(|(_, c)| now.duration_since(c.last_rx) > cfg.idle_timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let conn = conns.remove(&id).expect("conn present");
            GatewayStats::bump(&stats.idle_timeouts);
            close_conn(fs, stats, epfd, conn);
        }
    }
    // Shutdown: every surviving connection is reaped like a dead one.
    for (_, conn) in conns.drain() {
        close_conn(fs, stats, epfd, conn);
    }
    sys::close_fd(epfd);
    Ok(())
}

/// Closes a connection: deregisters it, issues `close` for every
/// descriptor it still holds (under its own server-assigned identity)
/// and counts the disconnect.
fn close_conn<F: Served>(fs: &F, stats: &GatewayStats, epfd: RawFd, mut conn: Conn) {
    let _ = sys::del(epfd, conn.stream.as_raw_fd());
    for fd in conn.fds.drain() {
        if fs.close(&conn.ctx, fd).is_ok() {
            GatewayStats::bump(&stats.fds_reaped);
        }
    }
    GatewayStats::bump(&stats.disconnects);
}

/// Drains the socket, decodes every complete frame, runs the burst, and
/// queues replies. Returns false when the connection must be closed
/// (EOF, error, protocol violation).
fn handle_readable<F: Served>(
    fs: &F,
    stats: &GatewayStats,
    cfg: &ServerConfig,
    epfd: RawFd,
    conn: &mut Conn,
) -> bool {
    let mut tmp = [0u8; 16384];
    let mut eof = false;
    let mut got_bytes = false;
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                got_bytes = true;
                conn.rd.extend_from_slice(&tmp[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                eof = true;
                break;
            }
        }
    }
    if got_bytes {
        conn.last_rx = Instant::now();
    }
    if !process_input(fs, stats, cfg, conn) {
        GatewayStats::bump(&stats.protocol_errors);
        return false;
    }
    if eof {
        // Peer is gone; whatever replies are still queued have no reader.
        return false;
    }
    flush_replies(epfd, conn).is_ok()
}

/// Parses and executes every complete frame buffered on `conn`.
/// Returns false on a protocol violation.
fn process_input<F: Served>(
    fs: &F,
    stats: &GatewayStats,
    cfg: &ServerConfig,
    conn: &mut Conn,
) -> bool {
    let mut consumed = 0usize;
    let mut requests: Vec<Request> = Vec::new();
    loop {
        match wire::split_frame(&conn.rd[consumed..]) {
            Ok(Some((used, body))) => {
                if !conn.hello_done {
                    match Hello::decode(body) {
                        Ok(h) if h.version == PROTOCOL_VERSION => {
                            conn.hello_done = true;
                            // The fd namespace is the *server-assigned*
                            // connection id; only credentials come from
                            // the client.
                            conn.ctx = ProcCtx::new(conn.id(), h.creds);
                            let ok =
                                HelloOk { version: PROTOCOL_VERSION, conn_id: conn.id() };
                            push_reply_bytes(conn, &ok.encode());
                        }
                        _ => return false,
                    }
                } else {
                    match Request::decode(body) {
                        Ok(r) => requests.push(r),
                        Err(_) => return false,
                    }
                }
                consumed += used;
            }
            Ok(None) => break,
            Err(_) => return false,
        }
    }
    conn.rd.drain(..consumed);
    if !requests.is_empty() && !run_burst(fs, stats, cfg, conn, requests) {
        return false;
    }
    conn.wr.len() - conn.wr_pos <= MAX_PENDING_REPLY
}

/// Admission-checks and executes one drained pipeline burst under a
/// single persistence batch, preserving request order in the replies.
fn run_burst<F: Served>(
    fs: &F,
    stats: &GatewayStats,
    cfg: &ServerConfig,
    conn: &mut Conn,
    requests: Vec<Request>,
) -> bool {
    let limit = cfg.max_in_flight as u64;
    let mut slots: Vec<Result<Request, Response>> = Vec::with_capacity(requests.len());
    let mut admitted = 0u64;
    for req in requests {
        let load = GatewayStats::get(&stats.in_flight) + admitted;
        if load >= limit {
            GatewayStats::bump(&stats.admission_rejections);
            slots.push(Err(Response::Busy {
                in_flight: load.min(u32::MAX as u64) as u32,
                limit: cfg.max_in_flight,
            }));
        } else {
            admitted += 1;
            slots.push(Ok(req));
        }
    }
    stats.in_flight.fetch_add(admitted, Ordering::Relaxed);
    let ctx = conn.ctx;
    let fds = &mut conn.fds;
    let replies: Vec<Response> = if admitted > 0 {
        let out = fs.with_batch(|| {
            slots
                .into_iter()
                .map(|slot| match slot {
                    Ok(req) => dispatch(fs, &ctx, req, fds),
                    Err(busy) => busy,
                })
                .collect()
        });
        GatewayStats::bump(&stats.flushes);
        out
    } else {
        slots.into_iter().map(|slot| slot.expect_err("all rejected")).collect()
    };
    stats.in_flight.fetch_sub(admitted, Ordering::Relaxed);
    stats.ops.fetch_add(admitted, Ordering::Relaxed);
    if admitted > 1 {
        stats.batched_ops.fetch_add(admitted, Ordering::Relaxed);
    }
    for r in replies {
        push_reply_bytes(conn, &r.encode());
    }
    true
}

fn push_reply_bytes(conn: &mut Conn, body: &[u8]) {
    let framed = wire::frame(body);
    conn.wr.extend_from_slice(&framed);
}

/// Writes queued replies until done or the socket backpressures, arming
/// or disarming `EPOLLOUT` interest to match.
fn flush_replies(epfd: RawFd, conn: &mut Conn) -> io::Result<()> {
    while conn.wr_pos < conn.wr.len() {
        match conn.stream.write(&conn.wr[conn.wr_pos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.wr_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let drained = conn.wr_pos == conn.wr.len();
    if drained {
        conn.wr.clear();
        conn.wr_pos = 0;
    }
    if drained == conn.want_out {
        // Interest set must flip: backpressured needs EPOLLOUT, drained
        // must drop it (a level-triggered always-writable socket would
        // spin the loop otherwise).
        conn.want_out = !drained;
        let mut bits = sys::EPOLLIN | sys::EPOLLRDHUP;
        if conn.want_out {
            bits |= sys::EPOLLOUT;
        }
        sys::modify(epfd, conn.stream.as_raw_fd(), bits, conn.id() as u64)?;
    }
    Ok(())
}
