//! Minimal `epoll` FFI, in the same spirit as the `mmap` shim in
//! `simurgh-pmem`: std already links libc, so the three syscall wrappers
//! the event loop needs are declared directly instead of pulling in the
//! `libc` crate. Linux-only, like the region mapping underneath.

use std::io;
use std::os::fd::RawFd;

/// Readable event / interest bit.
pub const EPOLLIN: u32 = 0x001;
/// Writable event / interest bit (armed only while a reply is queued).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Peer hung up.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (half-open detection).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// One `struct epoll_event`. Packed to match the x86-64 kernel ABI (the
/// architecture this reproduction targets, like the mmap shim).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready/interest bit set.
    pub events: u32,
    /// Caller-chosen token (the connection id here).
    pub data: u64,
}

extern "C" {
    /// libc `epoll_create1`.
    fn epoll_create1(flags: i32) -> i32;
    /// libc `epoll_ctl`.
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    /// libc `epoll_wait`.
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    /// libc `close`.
    fn close(fd: i32) -> i32;
}

/// A new close-on-exec epoll instance.
pub fn create() -> io::Result<RawFd> {
    // SAFETY: no pointers cross the boundary; the kernel returns a fresh
    // fd or -1.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(fd)
    }
}

fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data: token };
    // SAFETY: `ev` outlives the call; the kernel copies it before
    // returning. DEL ignores the event pointer on modern kernels but a
    // valid one is passed anyway for pre-2.6.9 semantics.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// Registers `fd` with the given interest set under `token`.
pub fn add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
}

/// Changes the interest set of an already-registered `fd`.
pub fn modify(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
}

/// Removes `fd` from the interest list.
pub fn del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Blocks up to `timeout_ms` for ready events, filling `events` and
/// returning how many are valid. A zero return is a tick (timeout).
pub fn wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `events` is a valid writable buffer of `events.len()`
    // entries for the duration of the call.
    let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
    if n < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        Err(e)
    } else {
        Ok(n as usize)
    }
}

/// Closes an fd owned by this module (the epoll instance itself).
pub fn close_fd(fd: RawFd) {
    // SAFETY: called once per fd returned by `create`; double-close is
    // excluded by ownership in `Shard`.
    unsafe {
        close(fd);
    }
}
