//! `simurgh-served`: the serving gateway over the syscall-free data path.
//!
//! The paper's file system is a library — every "process" in the
//! evaluation links it and touches NVMM directly. This crate is the
//! other deployment shape: a daemon owns the mounted region and exposes
//! the full [`FileSystem`] surface to remote clients over a
//! length-prefixed binary protocol (`simurgh_fsapi::wire`), so processes
//! that cannot (or should not) map the device still get the same API.
//!
//! Architecture (DESIGN.md §7):
//!
//! * [`server`] — one nonblocking acceptor plus a fixed pool of epoll
//!   shard loops; no per-connection OS thread. A connection's pipeline is
//!   drained into one burst and executed under a single persistence
//!   batch.
//! * [`dispatch`] — `Request` → trait call → `Response`, one arm per wire
//!   op (checked by the analyzer's `wire-parity` rule), with server-side
//!   fd tracking for crash reaping.
//! * [`batch`] — the [`Served`] extension trait: fence-scope batching and
//!   the gateway counter battery.
//! * [`loadgen`] — the measurement client: hundreds of connections,
//!   configurable op mix, p50/p99 via the shared histogram.
//! * [`sys`] — the three-syscall epoll FFI shim.
//!
//! Identity is server-assigned: the fd namespace of a connection is its
//! connection id from the `HelloOk` handshake, never a client-supplied
//! pid — two clients claiming the same pid can no longer collide in the
//! open-file table.
//!
//! [`FileSystem`]: simurgh_fsapi::FileSystem

pub mod batch;
pub mod dispatch;
pub mod loadgen;
pub mod server;
pub mod sys;

pub use batch::Served;
pub use dispatch::{dispatch, ConnFds};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use server::{Server, ServerConfig, ServerHandle};
