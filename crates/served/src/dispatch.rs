//! Request → trait-call → response translation, one arm per wire op.
//!
//! The `wire-parity` rule in `simurgh-analyze` checks this file: every
//! `Request` variant must appear as an arm of [`dispatch`], so a wire op
//! added to `fsapi` without a handler here fails tier-1.

use std::collections::HashSet;

use simurgh_fsapi::error::FsResult;
use simurgh_fsapi::wire::{Request, Response, MAX_FRAME};
use simurgh_fsapi::{Fd, FileSystem, ProcCtx};

/// Descriptors a connection currently holds, tracked server-side so a
/// dead connection's fd table can be reaped (`close` issued on its
/// behalf) without trusting anything the client said.
#[derive(Debug, Default)]
pub struct ConnFds {
    set: HashSet<u32>,
}

impl ConnFds {
    /// An empty descriptor set.
    pub fn new() -> Self {
        ConnFds::default()
    }

    /// Number of live descriptors.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no descriptor is held.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Drains the set for reaping on disconnect.
    pub fn drain(&mut self) -> Vec<Fd> {
        self.set.drain().map(Fd).collect()
    }
}

fn unit(r: FsResult<()>) -> Response {
    match r {
        Ok(()) => Response::Unit,
        Err(e) => Response::Err(e),
    }
}

fn size(r: FsResult<usize>) -> Response {
    match r {
        Ok(n) => Response::Size(n as u64),
        Err(e) => Response::Err(e),
    }
}

fn data(r: FsResult<Vec<u8>>) -> Response {
    match r {
        Ok(d) => Response::Data(d),
        Err(e) => Response::Err(e),
    }
}

fn read_into(fs: &impl FileSystem, ctx: &ProcCtx, fd: Fd, len: u32, off: Option<u64>) -> Response {
    let mut buf = vec![0u8; (len as usize).min(MAX_FRAME - 64)];
    let r = match off {
        Some(off) => fs.pread(ctx, fd, &mut buf, off),
        None => fs.read(ctx, fd, &mut buf),
    };
    match r {
        Ok(n) => {
            buf.truncate(n);
            Response::Data(buf)
        }
        Err(e) => Response::Err(e),
    }
}

/// Executes one decoded request against `fs` under the connection's
/// server-assigned identity `ctx`, maintaining the connection's fd set.
pub fn dispatch(fs: &impl FileSystem, ctx: &ProcCtx, req: Request, fds: &mut ConnFds) -> Response {
    match req {
        Request::Name => Response::Str(fs.name().to_owned()),
        Request::Open { path, flags, mode } => match fs.open(ctx, &path, flags, mode) {
            Ok(fd) => {
                fds.set.insert(fd.0);
                Response::Fd(fd)
            }
            Err(e) => Response::Err(e),
        },
        Request::Create { path, mode } => match fs.create(ctx, &path, mode) {
            Ok(fd) => {
                fds.set.insert(fd.0);
                Response::Fd(fd)
            }
            Err(e) => Response::Err(e),
        },
        Request::Close { fd } => {
            let r = fs.close(ctx, fd);
            if r.is_ok() {
                fds.set.remove(&fd.0);
            }
            unit(r)
        }
        Request::Read { fd, len } => read_into(fs, ctx, fd, len, None),
        Request::Write { fd, data } => size(fs.write(ctx, fd, &data)),
        Request::Pread { fd, len, off } => read_into(fs, ctx, fd, len, Some(off)),
        Request::Pwrite { fd, data, off } => size(fs.pwrite(ctx, fd, &data, off)),
        Request::Lseek { fd, pos } => match fs.lseek(ctx, fd, pos) {
            Ok(n) => Response::Size(n),
            Err(e) => Response::Err(e),
        },
        Request::Fsync { fd } => unit(fs.fsync(ctx, fd)),
        Request::Fstat { fd } => match fs.fstat(ctx, fd) {
            Ok(st) => Response::Stat(st),
            Err(e) => Response::Err(e),
        },
        Request::Ftruncate { fd, len } => unit(fs.ftruncate(ctx, fd, len)),
        Request::Fallocate { fd, off, len } => unit(fs.fallocate(ctx, fd, off, len)),
        Request::Unlink { path } => unit(fs.unlink(ctx, &path)),
        Request::Mkdir { path, mode } => unit(fs.mkdir(ctx, &path, mode)),
        Request::Rmdir { path } => unit(fs.rmdir(ctx, &path)),
        Request::Rename { old, new } => unit(fs.rename(ctx, &old, &new)),
        Request::Stat { path } => match fs.stat(ctx, &path) {
            Ok(st) => Response::Stat(st),
            Err(e) => Response::Err(e),
        },
        Request::Readdir { path } => match fs.readdir(ctx, &path) {
            Ok(es) => Response::Entries(es),
            Err(e) => Response::Err(e),
        },
        Request::Symlink { target, linkpath } => unit(fs.symlink(ctx, &target, &linkpath)),
        Request::Readlink { path } => match fs.readlink(ctx, &path) {
            Ok(t) => Response::Str(t),
            Err(e) => Response::Err(e),
        },
        Request::Link { existing, new } => unit(fs.link(ctx, &existing, &new)),
        Request::Chmod { path, perm } => unit(fs.chmod(ctx, &path, perm)),
        Request::SetTimes { path, atime, mtime } => unit(fs.set_times(ctx, &path, atime, mtime)),
        Request::Statfs => match fs.statfs(ctx) {
            Ok(st) => Response::Statfs(st),
            Err(e) => Response::Err(e),
        },
        Request::ReadFile { path } => data(fs.read_file(ctx, &path)),
        Request::ReadToVec { path } => data(fs.read_to_vec(ctx, &path)),
        Request::WriteFile { path, data } => unit(fs.write_file(ctx, &path, &data)),
        Request::SnapshotTree { root } => match fs.snapshot_tree(ctx, &root) {
            Ok(rows) => Response::Tree(rows),
            Err(e) => Response::Err(e),
        },
    }
}
