//! The wire-level load generator: N client connections hammering a
//! running daemon with a weighted op mix, measuring client-observed
//! latency through the same log2 histogram the in-FS probes use.
//!
//! Each connection runs pipelined rounds: a burst of requests goes out in
//! one write, then the replies are read back in order. `Busy` pushback is
//! obeyed — the refused request is retried in the next round and counted
//! separately from errors. Any framing, shape or handshake violation is a
//! *protocol error*; the acceptance bar for the gateway is zero of them.

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use simurgh_core::obs::{HistSnapshot, Histogram};
use simurgh_fsapi::wire::{self, Hello, HelloOk, Request, Response, PROTOCOL_VERSION};
use simurgh_fsapi::{Credentials, Fd, FileMode, OpenFlags};
use simurgh_workloads::gateway::{GatewayOp, OpMix};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Knobs of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon socket to connect to.
    pub socket: PathBuf,
    /// Concurrent client connections.
    pub connections: usize,
    /// Ops each connection issues (excluding setup and retries).
    pub ops_per_conn: usize,
    /// Requests per pipelined burst.
    pub pipeline: usize,
    /// Weighted op mix sampled per request.
    pub mix: OpMix,
    /// Bytes per `pwrite` payload / `pread` span.
    pub payload: usize,
    /// Seed for the per-connection RNGs (connection index is mixed in).
    pub seed: u64,
}

impl LoadgenConfig {
    /// Defaults: 64 connections × 200 ops, pipeline depth 8, 1 KiB
    /// payloads, the default mix.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        LoadgenConfig {
            socket: socket.into(),
            connections: 64,
            ops_per_conn: 200,
            pipeline: 8,
            mix: OpMix::default_mix(),
            payload: 1024,
            seed: 0x5349,
        }
    }
}

/// Aggregate result of a run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections that completed their op budget.
    pub connections_ok: usize,
    /// Connections configured.
    pub connections: usize,
    /// Ops acknowledged by the server (any non-Busy reply).
    pub ops: u64,
    /// Replies carrying an `FsError` (visible failures, not wire faults).
    pub fs_errors: u64,
    /// Framing / shape / handshake violations — must be zero.
    pub protocol_errors: u64,
    /// `Busy` pushbacks obeyed and retried.
    pub busy_retries: u64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Client-observed per-op latency (burst send → reply decoded).
    pub latency: HistSnapshot,
}

impl LoadgenReport {
    /// Acknowledged ops per second of wall time.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The report as one JSON object (schema documented in
    /// EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"connections\":{},\"connections_ok\":{},\"ops\":{},",
                "\"fs_errors\":{},\"protocol_errors\":{},\"busy_retries\":{},",
                "\"elapsed_ms\":{},\"throughput_ops_s\":{:.0},",
                "\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}"
            ),
            self.connections,
            self.connections_ok,
            self.ops,
            self.fs_errors,
            self.protocol_errors,
            self.busy_retries,
            self.elapsed.as_millis(),
            self.throughput(),
            self.latency.p50_ns,
            self.latency.p99_ns,
            self.latency.max_ns,
        )
    }
}

/// Expected reply shape of an issued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Unit,
    Fd,
    Size,
    Data,
    Stat,
    Entries,
}

fn shape_ok(e: Expect, r: &Response) -> bool {
    matches!(
        (e, r),
        (_, Response::Err(_))
            | (Expect::Unit, Response::Unit)
            | (Expect::Fd, Response::Fd(_))
            | (Expect::Size, Response::Size(_))
            | (Expect::Data, Response::Data(_))
            | (Expect::Stat, Response::Stat(_))
            | (Expect::Entries, Response::Entries(_))
    )
}

/// Shared tallies, bumped relaxed from every connection thread.
#[derive(Default)]
struct Tallies {
    ops: AtomicU64,
    fs_errors: AtomicU64,
    protocol_errors: AtomicU64,
    busy_retries: AtomicU64,
    conns_ok: AtomicU64,
}

/// Runs the full load against `cfg.socket`, one thread per connection
/// (client-side threads are fine — the daemon under test is the thing
/// that must not spend a thread per connection).
pub fn run(cfg: &LoadgenConfig) -> LoadgenReport {
    let hist = Histogram::new();
    let tallies = Tallies::default();
    let started = Instant::now();
    std::thread::scope(|s| {
        for i in 0..cfg.connections {
            let (hist, tallies) = (&hist, &tallies);
            s.spawn(move || {
                match drive_connection(cfg, i, hist, tallies) {
                    Ok(()) => {
                        tallies.conns_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        tallies.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("loadgen: connection {i} failed: {e}");
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    LoadgenReport {
        connections_ok: tallies.conns_ok.load(Ordering::Relaxed) as usize,
        connections: cfg.connections,
        ops: tallies.ops.load(Ordering::Relaxed),
        fs_errors: tallies.fs_errors.load(Ordering::Relaxed),
        protocol_errors: tallies.protocol_errors.load(Ordering::Relaxed),
        busy_retries: tallies.busy_retries.load(Ordering::Relaxed),
        elapsed,
        latency: hist.snapshot(),
    }
}

/// A framed, shape-checked client connection.
struct Client {
    stream: UnixStream,
    rd: Vec<u8>,
}

impl Client {
    fn connect(cfg: &LoadgenConfig) -> io::Result<(Client, u32)> {
        let stream = UnixStream::connect(&cfg.socket)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let mut c = Client { stream, rd: Vec::new() };
        let hello = Hello { version: PROTOCOL_VERSION, creds: Credentials::ROOT };
        c.stream.write_all(&wire::frame(&hello.encode()))?;
        let body = c.next_frame()?;
        let ok = HelloOk::decode(&body).map_err(bad_wire)?;
        if ok.version != PROTOCOL_VERSION {
            return Err(bad_wire("server speaks a different protocol version"));
        }
        Ok((c, ok.conn_id))
    }

    /// Reads until one complete frame is buffered and returns its body.
    fn next_frame(&mut self) -> io::Result<Vec<u8>> {
        let mut tmp = [0u8; 16384];
        loop {
            if let Some((used, body)) = wire::split_frame(&self.rd).map_err(bad_wire)? {
                let body = body.to_vec();
                self.rd.drain(..used);
                return Ok(body);
            }
            let n = self.stream.read(&mut tmp)?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.rd.extend_from_slice(&tmp[..n]);
        }
    }

    /// Sends one burst in a single write.
    fn send_burst(&mut self, reqs: &[(Request, Expect)]) -> io::Result<()> {
        let mut out = Vec::new();
        for (req, _) in reqs {
            out.extend_from_slice(&wire::frame(&req.encode()));
        }
        self.stream.write_all(&out)
    }
}

fn bad_wire(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Per-connection namespace and op synthesis state.
struct ConnState {
    dir: String,
    data_fd: Fd,
    /// Names created and not yet unlinked.
    created: Vec<String>,
    /// Fds returned by `create` ops, closed in the next burst.
    to_close: Vec<Fd>,
    next_name: u64,
    file_span: u64,
}

impl ConnState {
    fn synthesize(
        &mut self,
        op: GatewayOp,
        payload: usize,
        rng: &mut StdRng,
    ) -> (Request, Expect) {
        match op {
            GatewayOp::Pwrite => {
                let off = rng.random_range(0..self.file_span);
                let data = vec![(off as u8) ^ 0x5a; payload];
                (Request::Pwrite { fd: self.data_fd, data, off }, Expect::Size)
            }
            GatewayOp::Pread => {
                let off = rng.random_range(0..self.file_span);
                (Request::Pread { fd: self.data_fd, len: payload as u32, off }, Expect::Data)
            }
            GatewayOp::Create => {
                let name = format!("{}/f{}", self.dir, self.next_name);
                self.next_name += 1;
                self.created.push(name.clone());
                (Request::Create { path: name, mode: FileMode::default() }, Expect::Fd)
            }
            GatewayOp::Stat => {
                (Request::Stat { path: format!("{}/data", self.dir) }, Expect::Stat)
            }
            GatewayOp::Readdir => {
                (Request::Readdir { path: self.dir.clone() }, Expect::Entries)
            }
            GatewayOp::Unlink => match self.created.pop() {
                Some(name) => (Request::Unlink { path: name }, Expect::Unit),
                // Nothing to unlink yet — stat instead so the op budget
                // still advances.
                None => (Request::Stat { path: format!("{}/data", self.dir) }, Expect::Stat),
            },
        }
    }
}

fn drive_connection(
    cfg: &LoadgenConfig,
    index: usize,
    hist: &Histogram,
    tallies: &Tallies,
) -> io::Result<()> {
    let (mut client, conn_id) = Client::connect(cfg)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (index as u64).wrapping_mul(0x9e37_79b9));
    let dir = format!("/lgen/c{conn_id}");
    // Setup burst: parent dir (first winner creates it, the rest see
    // AlreadyExists — both fine), own dir, working file.
    let setup: Vec<(Request, Expect)> = vec![
        (Request::Mkdir { path: "/lgen".into(), mode: FileMode::default() }, Expect::Unit),
        (Request::Mkdir { path: dir.clone(), mode: FileMode::default() }, Expect::Unit),
        (
            Request::Open {
                path: format!("{dir}/data"),
                flags: OpenFlags {
                    read: true,
                    write: true,
                    create: true,
                    excl: false,
                    truncate: false,
                    append: false,
                },
                mode: FileMode::default(),
            },
            Expect::Fd,
        ),
    ];
    client.send_burst(&setup)?;
    let mut data_fd = None;
    for (i, (_, expect)) in setup.iter().enumerate() {
        let body = client.next_frame()?;
        let resp = Response::decode(&body).map_err(bad_wire)?;
        if !shape_ok(*expect, &resp) {
            return Err(bad_wire(format!("setup reply {i} has wrong shape: {resp:?}")));
        }
        match resp {
            Response::Fd(fd) => data_fd = Some(fd),
            Response::Err(e) if i == 2 => {
                return Err(bad_wire(format!("cannot open working file: {e}")));
            }
            _ => {}
        }
    }
    let data_fd = data_fd.ok_or_else(|| bad_wire("no fd from setup"))?;
    let mut st = ConnState {
        dir,
        data_fd,
        created: Vec::new(),
        to_close: Vec::new(),
        next_name: 0,
        file_span: 64 * 1024,
    };

    let mut remaining = cfg.ops_per_conn;
    let mut retry: Vec<(Request, Expect)> = Vec::new();
    while remaining > 0 || !retry.is_empty() || !st.to_close.is_empty() {
        let mut burst: Vec<(Request, Expect)> = Vec::new();
        for fd in st.to_close.drain(..) {
            burst.push((Request::Close { fd }, Expect::Unit));
        }
        burst.append(&mut retry);
        while burst.len() < cfg.pipeline && remaining > 0 {
            let op = cfg.mix.sample(&mut rng);
            burst.push(st.synthesize(op, cfg.payload, &mut rng));
            remaining -= 1;
        }
        if burst.is_empty() {
            break;
        }
        let sent = Instant::now();
        client.send_burst(&burst)?;
        for (req, expect) in burst {
            let body = client.next_frame()?;
            let resp = Response::decode(&body).map_err(bad_wire)?;
            hist.record(sent.elapsed().as_nanos() as u64);
            if let Response::Busy { .. } = resp {
                tallies.busy_retries.fetch_add(1, Ordering::Relaxed);
                retry.push((req, expect));
                continue;
            }
            if !shape_ok(expect, &resp) {
                return Err(bad_wire(format!("reply shape mismatch for {req:?}: {resp:?}")));
            }
            tallies.ops.fetch_add(1, Ordering::Relaxed);
            match resp {
                Response::Err(_) => {
                    tallies.fs_errors.fetch_add(1, Ordering::Relaxed);
                    // The created-name bookkeeping is best-effort; an
                    // errored create must not be unlinked later.
                    if let Request::Create { path, .. } = &req {
                        st.created.retain(|n| n != path);
                    }
                }
                Response::Fd(fd) => st.to_close.push(fd),
                _ => {}
            }
        }
    }
    // Graceful teardown: close the working file.
    let bye = [(Request::Close { fd: st.data_fd }, Expect::Unit)];
    client.send_burst(&bye)?;
    let body = client.next_frame()?;
    let resp = Response::decode(&body).map_err(bad_wire)?;
    if !shape_ok(Expect::Unit, &resp) {
        return Err(bad_wire(format!("close reply has wrong shape: {resp:?}")));
    }
    Ok(())
}
