//! The gateway load generator: hundreds of client connections against a
//! running `simurgh-served`, reporting throughput and client-observed
//! p50/p99 latency as one JSON object (schema in EXPERIMENTS.md).
//!
//! ```text
//! loadgen --socket /tmp/simurgh.sock --connections 256 [--ops 200]
//!         [--pipeline 8] [--payload 1024] [--mix pwrite=4,pread=4,create=1,stat=1]
//!         [--seed 7]
//! ```
//!
//! Exit status is nonzero if any protocol error occurred — the gateway's
//! acceptance bar is zero.

use simurgh_served::LoadgenConfig;
use simurgh_workloads::gateway::OpMix;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: loadgen --socket PATH [--connections N] [--ops N] [--pipeline N] \
             [--payload BYTES] [--mix op=w,op=w,...] [--seed N]"
        );
        return;
    }
    let socket = flag(&args, "--socket").unwrap_or_else(|| "/tmp/simurgh.sock".into());
    let mut cfg = LoadgenConfig::new(socket);
    if let Some(v) = flag(&args, "--connections") {
        cfg.connections = v.parse().expect("--connections takes a number");
    }
    if let Some(v) = flag(&args, "--ops") {
        cfg.ops_per_conn = v.parse().expect("--ops takes a number");
    }
    if let Some(v) = flag(&args, "--pipeline") {
        cfg.pipeline = v.parse::<usize>().expect("--pipeline takes a number").max(1);
    }
    if let Some(v) = flag(&args, "--payload") {
        cfg.payload = v.parse().expect("--payload takes bytes");
    }
    if let Some(v) = flag(&args, "--mix") {
        cfg.mix = OpMix::parse(&v).expect("valid --mix spec");
    }
    if let Some(v) = flag(&args, "--seed") {
        cfg.seed = v.parse().expect("--seed takes a number");
    }

    let report = simurgh_served::loadgen::run(&cfg);
    println!("{}", report.to_json());
    if report.protocol_errors > 0 || report.connections_ok != report.connections {
        std::process::exit(1);
    }
}
