//! The gateway daemon: owns a file-backed region (formatting it on first
//! run, shared-mounting it afterwards) and serves the full `FileSystem`
//! surface on a Unix socket until killed.
//!
//! ```text
//! simurgh-served --socket /tmp/simurgh.sock --region /tmp/simurgh.img \
//!                [--size 268435456] [--shards 4] \
//!                [--max-in-flight 1024] [--idle-timeout-ms 30000]
//! ```

use std::sync::Arc;
use std::time::Duration;

use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_pmem::region::RegionBuilder;
use simurgh_served::{Server, ServerConfig};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: simurgh-served --socket PATH --region PATH [--size BYTES] \
             [--shards N] [--max-in-flight N] [--idle-timeout-ms MS]"
        );
        return;
    }
    let socket = flag(&args, "--socket").unwrap_or_else(|| "/tmp/simurgh.sock".into());
    let region_path = flag(&args, "--region").unwrap_or_else(|| "/tmp/simurgh.img".into());
    let size: usize = flag(&args, "--size")
        .map(|v| v.parse().expect("--size takes bytes"))
        .unwrap_or(256 << 20);

    let fresh = !std::path::Path::new(&region_path).exists();
    let region = if fresh {
        Arc::new(
            RegionBuilder::new(size)
                .file(&region_path)
                .build()
                .expect("create region file"),
        )
    } else {
        Arc::new(RegionBuilder::open_file(&region_path).build().expect("open region file"))
    };
    if fresh {
        // Format writes the superblock; the serving instance below is a
        // proper shared mount like any other attaching process.
        drop(SimurghFs::format(Arc::clone(&region), SimurghConfig::default()).expect("format"));
    }
    let fs = Arc::new(
        SimurghFs::mount_shared(region, SimurghConfig::default()).expect("mount_shared"),
    );

    let mut cfg = ServerConfig::new(&socket);
    if let Some(n) = flag(&args, "--shards") {
        cfg.shards = n.parse().expect("--shards takes a number");
    }
    if let Some(n) = flag(&args, "--max-in-flight") {
        cfg.max_in_flight = n.parse().expect("--max-in-flight takes a number");
    }
    if let Some(ms) = flag(&args, "--idle-timeout-ms") {
        cfg.idle_timeout =
            Duration::from_millis(ms.parse().expect("--idle-timeout-ms takes milliseconds"));
    }

    let handle = Server::start(Arc::clone(&fs), cfg).expect("start server");
    eprintln!(
        "simurgh-served: pid {} serving {} on {} ({} mount)",
        std::process::id(),
        region_path,
        handle.socket().display(),
        if fresh { "fresh" } else { "shared" },
    );
    // Serve until killed; the region is crash-consistent by construction,
    // so a later shared mount recovers whatever a kill left behind.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
