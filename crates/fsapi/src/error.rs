//! File-system error codes, modelled on the POSIX errnos the paper's
//! workloads (FxMark, Filebench, LevelDB, tar, git) actually exercise.
//!
//! The enum is `#[non_exhaustive]`: downstream crates must keep a wildcard
//! arm so new conditions (like the fault-injection marker
//! [`FsError::Injected`]) can be added without breaking them. Every variant
//! maps to a classic errno through [`FsError::errno`] /
//! [`FsError::errno_name`], and the type converts losslessly-enough to and
//! from [`std::io::Error`] for harnesses that speak `io::Result`.

/// Result alias used across all file-system implementations.
pub type FsResult<T> = Result<T, FsError>;

/// POSIX-flavoured error conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsError {
    /// ENOENT: a path component does not exist.
    NotFound,
    /// EEXIST: target already exists (O_EXCL create, mkdir, link).
    Exists,
    /// ENOTDIR: a non-final path component is not a directory.
    NotDir,
    /// EISDIR: directory where a file was required.
    IsDir,
    /// ENOTEMPTY: rmdir / rename onto a non-empty directory.
    NotEmpty,
    /// EACCES: permission denied by mode bits.
    Access,
    /// ENOSPC: allocator exhausted (organically — see [`FsError::Injected`]
    /// for the fault-injected flavour).
    NoSpace,
    /// EBADF: unknown or wrongly-opened file descriptor.
    BadFd,
    /// ENAMETOOLONG.
    NameTooLong,
    /// EINVAL: malformed path or argument.
    Invalid,
    /// EMLINK / ELOOP: too many links or symlink loop.
    TooManyLinks,
    /// EROFS or an operation the implementation does not support.
    Unsupported,
    /// Internal consistency failure (would be a kernel bug on a real FS).
    Corrupt(&'static str),
    /// ENOSPC delivered by the fault-injection harness rather than by real
    /// exhaustion; the payload names the injection site. Crash-matrix
    /// reports use this to tell a planned fault from an organic one —
    /// everything else should treat it exactly like [`FsError::NoSpace`].
    Injected(&'static str),
}

impl FsError {
    /// The closest classic errno name, for harness output.
    pub fn errno_name(&self) -> &'static str {
        match self {
            FsError::NotFound => "ENOENT",
            FsError::Exists => "EEXIST",
            FsError::NotDir => "ENOTDIR",
            FsError::IsDir => "EISDIR",
            FsError::NotEmpty => "ENOTEMPTY",
            FsError::Access => "EACCES",
            FsError::NoSpace => "ENOSPC",
            FsError::BadFd => "EBADF",
            FsError::NameTooLong => "ENAMETOOLONG",
            FsError::Invalid => "EINVAL",
            FsError::TooManyLinks => "ELOOP",
            FsError::Unsupported => "ENOTSUP",
            FsError::Corrupt(_) => "EIO",
            FsError::Injected(_) => "ENOSPC",
        }
    }

    /// The classic Linux errno value (what a kernel file system would
    /// return in `errno`), matching [`errno_name`](Self::errno_name).
    pub fn errno(&self) -> i32 {
        match self {
            FsError::NotFound => 2,       // ENOENT
            FsError::Exists => 17,        // EEXIST
            FsError::NotDir => 20,        // ENOTDIR
            FsError::IsDir => 21,         // EISDIR
            FsError::NotEmpty => 39,      // ENOTEMPTY
            FsError::Access => 13,        // EACCES
            FsError::NoSpace => 28,       // ENOSPC
            FsError::BadFd => 9,          // EBADF
            FsError::NameTooLong => 36,   // ENAMETOOLONG
            FsError::Invalid => 22,       // EINVAL
            FsError::TooManyLinks => 40,  // ELOOP
            FsError::Unsupported => 95,   // ENOTSUP / EOPNOTSUPP
            FsError::Corrupt(_) => 5,     // EIO
            FsError::Injected(_) => 28,   // ENOSPC
        }
    }

    /// True for errors produced by the fault-injection harness.
    pub fn is_injected(&self) -> bool {
        matches!(self, FsError::Injected(_))
    }
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Corrupt(what) => write!(f, "EIO (fs corruption: {what})"),
            FsError::Injected(site) => write!(f, "ENOSPC (injected at {site})"),
            other => f.write_str(other.errno_name()),
        }
    }
}

impl std::error::Error for FsError {}

impl From<FsError> for std::io::Error {
    /// Maps onto the OS errno, so `io::Error::raw_os_error` round-trips and
    /// the kernel-rendered message matches what a real file system would
    /// produce.
    fn from(e: FsError) -> Self {
        std::io::Error::from_raw_os_error(e.errno())
    }
}

impl From<std::io::Error> for FsError {
    /// Best-effort reverse mapping: exact for every error that carries a raw
    /// OS errno we know, by-kind otherwise. `Injected` collapses to
    /// `NoSpace` (the injection marker does not survive the io layer).
    fn from(e: std::io::Error) -> Self {
        match e.raw_os_error() {
            Some(2) => FsError::NotFound,
            Some(17) => FsError::Exists,
            Some(20) => FsError::NotDir,
            Some(21) => FsError::IsDir,
            Some(39) => FsError::NotEmpty,
            Some(13) => FsError::Access,
            Some(28) => FsError::NoSpace,
            Some(9) => FsError::BadFd,
            Some(36) => FsError::NameTooLong,
            Some(22) => FsError::Invalid,
            Some(40) => FsError::TooManyLinks,
            Some(95) => FsError::Unsupported,
            Some(5) => FsError::Corrupt("io error"),
            _ => match e.kind() {
                std::io::ErrorKind::NotFound => FsError::NotFound,
                std::io::ErrorKind::AlreadyExists => FsError::Exists,
                std::io::ErrorKind::PermissionDenied => FsError::Access,
                std::io::ErrorKind::InvalidInput => FsError::Invalid,
                std::io::ErrorKind::Unsupported => FsError::Unsupported,
                _ => FsError::Corrupt("unmapped io error"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_names() {
        assert_eq!(FsError::NotFound.errno_name(), "ENOENT");
        assert_eq!(FsError::Corrupt("x").errno_name(), "EIO");
        assert_eq!(format!("{}", FsError::Exists), "EEXIST");
        assert_eq!(format!("{}", FsError::Corrupt("bad line")), "EIO (fs corruption: bad line)");
    }

    #[test]
    fn injected_is_enospc_but_distinguishable() {
        let e = FsError::Injected("meta-alloc");
        assert_eq!(e.errno_name(), "ENOSPC");
        assert_eq!(e.errno(), FsError::NoSpace.errno());
        assert!(e.is_injected());
        assert!(!FsError::NoSpace.is_injected());
        assert_ne!(e, FsError::NoSpace);
        assert_eq!(format!("{e}"), "ENOSPC (injected at meta-alloc)");
    }

    #[test]
    fn io_error_round_trip() {
        let all = [
            FsError::NotFound,
            FsError::Exists,
            FsError::NotDir,
            FsError::IsDir,
            FsError::NotEmpty,
            FsError::Access,
            FsError::NoSpace,
            FsError::BadFd,
            FsError::NameTooLong,
            FsError::Invalid,
            FsError::TooManyLinks,
            FsError::Unsupported,
            FsError::Corrupt("x"),
            FsError::Injected("y"),
        ];
        for e in all {
            let io: std::io::Error = e.clone().into();
            assert_eq!(io.raw_os_error(), Some(e.errno()), "{e:?} keeps its errno");
            let back = FsError::from(io);
            assert_eq!(back.errno_name(), e.errno_name(), "{e:?} round-trips by errno");
        }
    }

    #[test]
    fn io_error_by_kind_fallback() {
        let e = std::io::Error::new(std::io::ErrorKind::NotFound, "synthetic");
        assert_eq!(FsError::from(e), FsError::NotFound);
        let e = std::io::Error::new(std::io::ErrorKind::AlreadyExists, "synthetic");
        assert_eq!(FsError::from(e), FsError::Exists);
    }
}
