//! File-system error codes, modelled on the POSIX errnos the paper's
//! workloads (FxMark, Filebench, LevelDB, tar, git) actually exercise.

/// Result alias used across all file-system implementations.
pub type FsResult<T> = Result<T, FsError>;

/// POSIX-flavoured error conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT: a path component does not exist.
    NotFound,
    /// EEXIST: target already exists (O_EXCL create, mkdir, link).
    Exists,
    /// ENOTDIR: a non-final path component is not a directory.
    NotDir,
    /// EISDIR: directory where a file was required.
    IsDir,
    /// ENOTEMPTY: rmdir / rename onto a non-empty directory.
    NotEmpty,
    /// EACCES: permission denied by mode bits.
    Access,
    /// ENOSPC: allocator exhausted.
    NoSpace,
    /// EBADF: unknown or wrongly-opened file descriptor.
    BadFd,
    /// ENAMETOOLONG.
    NameTooLong,
    /// EINVAL: malformed path or argument.
    Invalid,
    /// EMLINK / ELOOP: too many links or symlink loop.
    TooManyLinks,
    /// EROFS or an operation the implementation does not support.
    Unsupported,
    /// Internal consistency failure (would be a kernel bug on a real FS).
    Corrupt(&'static str),
}

impl FsError {
    /// The closest classic errno name, for harness output.
    pub fn errno_name(&self) -> &'static str {
        match self {
            FsError::NotFound => "ENOENT",
            FsError::Exists => "EEXIST",
            FsError::NotDir => "ENOTDIR",
            FsError::IsDir => "EISDIR",
            FsError::NotEmpty => "ENOTEMPTY",
            FsError::Access => "EACCES",
            FsError::NoSpace => "ENOSPC",
            FsError::BadFd => "EBADF",
            FsError::NameTooLong => "ENAMETOOLONG",
            FsError::Invalid => "EINVAL",
            FsError::TooManyLinks => "ELOOP",
            FsError::Unsupported => "ENOTSUP",
            FsError::Corrupt(_) => "EIO",
        }
    }
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Corrupt(what) => write!(f, "EIO (fs corruption: {what})"),
            other => f.write_str(other.errno_name()),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_names() {
        assert_eq!(FsError::NotFound.errno_name(), "ENOENT");
        assert_eq!(FsError::Corrupt("x").errno_name(), "EIO");
        assert_eq!(format!("{}", FsError::Exists), "EEXIST");
        assert_eq!(format!("{}", FsError::Corrupt("bad line")), "EIO (fs corruption: bad line)");
    }
}
