//! The common `FileSystem` trait all implementations provide, plus the
//! per-call process context and a shared open-file-table utility.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::RwLock;

use crate::error::{FsError, FsResult};
use crate::types::{Credentials, Fd, FileMode, FsStats, OpenFlags, SeekFrom, Stat};

/// Identity of the calling process for one operation: a process id (used to
/// scope file descriptors) and its credentials (used for permission checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcCtx {
    pub pid: u32,
    pub creds: Credentials,
}

impl ProcCtx {
    /// A process with explicit credentials.
    pub const fn new(pid: u32, creds: Credentials) -> Self {
        ProcCtx { pid, creds }
    }

    /// A root-credentialed process (most benchmarks run as root, like the
    /// paper's FxMark runs).
    pub const fn root(pid: u32) -> Self {
        ProcCtx { pid, creds: Credentials::ROOT }
    }
}

/// One entry returned by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    pub name: String,
    pub ftype: crate::types::FileType,
    /// Implementation-stable identifier (persistent pointer for Simurgh).
    pub ino: u64,
}

/// The POSIX-like interface every evaluated file system implements.
///
/// Semantics follow Linux closely for the subset the paper's workloads
/// exercise. Symbolic links are followed in intermediate components and in
/// the final component of read-like operations; `unlink`, `rename` and
/// `readlink` operate on the link itself.
pub trait FileSystem: Send + Sync {
    /// Short label for harness output ("simurgh", "nova", ...).
    fn name(&self) -> &str;

    /// Opens (and optionally creates) a file. `mode` applies on creation.
    fn open(&self, ctx: &ProcCtx, path: &str, flags: OpenFlags, mode: FileMode) -> FsResult<Fd>;

    /// `O_CREAT | O_EXCL | O_WRONLY` — what FxMark's create benchmark issues.
    fn create(&self, ctx: &ProcCtx, path: &str, mode: FileMode) -> FsResult<Fd> {
        self.open(ctx, path, OpenFlags::WRONLY.with_excl(), mode)
    }

    fn close(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<()>;

    /// Reads at the descriptor's position, advancing it.
    fn read(&self, ctx: &ProcCtx, fd: Fd, buf: &mut [u8]) -> FsResult<usize>;

    /// Writes at the descriptor's position (or EOF with `O_APPEND`),
    /// advancing it.
    fn write(&self, ctx: &ProcCtx, fd: Fd, data: &[u8]) -> FsResult<usize>;

    /// Positional read; does not move the descriptor position.
    fn pread(&self, ctx: &ProcCtx, fd: Fd, buf: &mut [u8], off: u64) -> FsResult<usize>;

    /// Positional write; does not move the descriptor position.
    fn pwrite(&self, ctx: &ProcCtx, fd: Fd, data: &[u8], off: u64) -> FsResult<usize>;

    fn lseek(&self, ctx: &ProcCtx, fd: Fd, pos: SeekFrom) -> FsResult<u64>;

    /// Flushes file data and metadata to persistent media.
    fn fsync(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<()>;

    fn fstat(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<Stat>;

    fn ftruncate(&self, ctx: &ProcCtx, fd: Fd, len: u64) -> FsResult<()>;

    /// Preallocates `[off, off+len)` (FxMark's DWTL benchmark).
    fn fallocate(&self, ctx: &ProcCtx, fd: Fd, off: u64, len: u64) -> FsResult<()>;

    fn unlink(&self, ctx: &ProcCtx, path: &str) -> FsResult<()>;

    fn mkdir(&self, ctx: &ProcCtx, path: &str, mode: FileMode) -> FsResult<()>;

    fn rmdir(&self, ctx: &ProcCtx, path: &str) -> FsResult<()>;

    fn rename(&self, ctx: &ProcCtx, old: &str, new: &str) -> FsResult<()>;

    fn stat(&self, ctx: &ProcCtx, path: &str) -> FsResult<Stat>;

    fn readdir(&self, ctx: &ProcCtx, path: &str) -> FsResult<Vec<DirEntry>>;

    fn symlink(&self, ctx: &ProcCtx, target: &str, linkpath: &str) -> FsResult<()>;

    fn readlink(&self, ctx: &ProcCtx, path: &str) -> FsResult<String>;

    /// Hard link: `new` becomes another name for `existing`.
    fn link(&self, ctx: &ProcCtx, existing: &str, new: &str) -> FsResult<()>;

    fn chmod(&self, ctx: &ProcCtx, path: &str, perm: u16) -> FsResult<()>;

    /// Sets access/modification times (tar unpack issues this per file).
    fn set_times(&self, ctx: &ProcCtx, path: &str, atime: u64, mtime: u64) -> FsResult<()>;

    /// Device-level statistics (`statvfs`). Implementations without a real
    /// device report [`crate::FsError::Unsupported`].
    fn statfs(&self, _ctx: &ProcCtx) -> FsResult<FsStats> {
        Err(crate::FsError::Unsupported)
    }

    /// Convenience: full-file read. Every implementation serves this and the
    /// other whole-file helpers through the same descriptor-based primitives,
    /// so the harness, the baselines and the crash-matrix driver all exercise
    /// one surface.
    fn read_file(&self, ctx: &ProcCtx, path: &str) -> FsResult<Vec<u8>> {
        let fd = self.open(ctx, path, OpenFlags::RDONLY, FileMode::default())?;
        let st = self.fstat(ctx, fd)?;
        let mut buf = vec![0u8; st.size as usize];
        let mut done = 0;
        while done < buf.len() {
            let n = self.pread(ctx, fd, &mut buf[done..], done as u64)?;
            if n == 0 {
                break;
            }
            done += n;
        }
        buf.truncate(done);
        self.close(ctx, fd)?;
        Ok(buf)
    }

    /// Alias of [`read_file`](Self::read_file), kept for callers written
    /// against the pre-v2 helper name.
    fn read_to_vec(&self, ctx: &ProcCtx, path: &str) -> FsResult<Vec<u8>> {
        self.read_file(ctx, path)
    }

    /// Convenience: create/truncate and write a whole file.
    fn write_file(&self, ctx: &ProcCtx, path: &str, data: &[u8]) -> FsResult<()> {
        let fd = self.open(ctx, path, OpenFlags::CREATE, FileMode::default())?;
        let mut done = 0;
        while done < data.len() {
            done += self.pwrite(ctx, fd, &data[done..], done as u64)?;
        }
        self.fsync(ctx, fd)?;
        self.close(ctx, fd)
    }

    /// Convenience: the whole tree under `root` as sorted
    /// `(path, kind, size)` rows (directories report size 0). Used to
    /// compare two file systems — or two crash outcomes — structurally.
    fn snapshot_tree(&self, ctx: &ProcCtx, root: &str) -> FsResult<Vec<TreeEntry>> {
        let mut out = Vec::new();
        let mut stack = vec![if root.is_empty() { "/".to_owned() } else { root.to_owned() }];
        while let Some(dir) = stack.pop() {
            for e in self.readdir(ctx, &dir)? {
                let path =
                    if dir == "/" { format!("/{}", e.name) } else { format!("{dir}/{}", e.name) };
                let st = self.stat(ctx, &path)?;
                out.push((path.clone(), e.ftype, if st.is_dir() { 0 } else { st.size }));
                if e.ftype == crate::types::FileType::Directory {
                    stack.push(path);
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

/// One row of [`FileSystem::snapshot_tree`]: `(path, kind, size)`.
pub type TreeEntry = (String, crate::types::FileType, u64);

/// A sharded open-file table mapping descriptors to per-open state.
///
/// Implementations keep their own `T` (position, flags, inode handle).
/// Descriptors are scoped by the `pid` word of the caller's [`ProcCtx`]: a
/// descriptor returned to owner A is invisible to owner B, as with kernel
/// fd tables.
///
/// **The scoping id must come from a trusted source.** In process that is
/// the caller's own pid; over a wire it must be the *server-assigned*
/// connection id, never an id the client supplied — a client choosing its
/// own `pid` could name another connection's `(pid, fd)` keys and read or
/// close descriptors it never opened (see `wire::Hello`/`wire::HelloOk`:
/// requests carry no identity at all, so the collision is impossible by
/// construction).
pub struct OpenTable<T> {
    shards: Vec<RwLock<HashMap<(u32, u32), T>>>,
    next_fd: AtomicU32,
}

impl<T> OpenTable<T> {
    const SHARDS: usize = 16;

    /// An empty table; descriptors start at 3 (0..2 are "stdio").
    pub fn new() -> Self {
        OpenTable {
            shards: (0..Self::SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            next_fd: AtomicU32::new(3), // 0..2 are "stdio"
        }
    }

    #[inline]
    fn shard(&self, pid: u32, fd: Fd) -> &RwLock<HashMap<(u32, u32), T>> {
        let h = (pid as usize).wrapping_mul(31).wrapping_add(fd.0 as usize);
        &self.shards[h % Self::SHARDS]
    }

    /// Inserts state for a new descriptor and returns it.
    pub fn insert(&self, pid: u32, state: T) -> Fd {
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.shard(pid, fd).write().insert((pid, fd.0), state);
        fd
    }

    /// Removes a descriptor, returning its state.
    pub fn remove(&self, pid: u32, fd: Fd) -> FsResult<T> {
        self.shard(pid, fd).write().remove(&(pid, fd.0)).ok_or(FsError::BadFd)
    }

    /// Reads through a shared reference to the open state.
    pub fn with<R>(&self, pid: u32, fd: Fd, f: impl FnOnce(&T) -> R) -> FsResult<R> {
        let shard = self.shard(pid, fd).read();
        shard.get(&(pid, fd.0)).map(f).ok_or(FsError::BadFd)
    }

    /// Mutates the open state.
    pub fn with_mut<R>(&self, pid: u32, fd: Fd, f: impl FnOnce(&mut T) -> R) -> FsResult<R> {
        let mut shard = self.shard(pid, fd).write();
        shard.get_mut(&(pid, fd.0)).map(f).ok_or(FsError::BadFd)
    }

    /// Number of open descriptors across all processes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no descriptor is open anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for OpenTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_table_scopes_by_pid() {
        let t: OpenTable<u64> = OpenTable::new();
        let fd = t.insert(1, 42);
        assert_eq!(t.with(1, fd, |v| *v).unwrap(), 42);
        assert_eq!(t.with(2, fd, |v| *v), Err(FsError::BadFd));
        t.with_mut(1, fd, |v| *v += 1).unwrap();
        assert_eq!(t.remove(1, fd).unwrap(), 43);
        assert_eq!(t.remove(1, fd), Err(FsError::BadFd));
        assert!(t.is_empty());
    }

    #[test]
    fn descriptors_are_distinct() {
        let t: OpenTable<u8> = OpenTable::new();
        let a = t.insert(1, 0);
        let b = t.insert(1, 1);
        assert_ne!(a, b);
        assert!(a.0 >= 3, "stdio descriptors reserved");
        assert_eq!(t.len(), 2);
    }
}
