//! Vocabulary types shared by every file-system implementation.

/// A file descriptor. Descriptors are scoped to a `(file system, process)`
/// pair, like kernel fd tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

/// Kind of a directory entry / inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FileType {
    Regular,
    Directory,
    Symlink,
}

/// Permission bits plus file type, i.e. `st_mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileMode {
    pub ftype: FileType,
    /// Classic 9-bit rwxrwxrwx permission mask.
    pub perm: u16,
}

impl FileMode {
    /// Regular file with the given permission bits.
    pub const fn file(perm: u16) -> Self {
        FileMode { ftype: FileType::Regular, perm }
    }

    /// Directory with the given permission bits.
    pub const fn dir(perm: u16) -> Self {
        FileMode { ftype: FileType::Directory, perm }
    }

    /// Symlink; permissions are conventionally `0o777` and ignored.
    pub const fn symlink() -> Self {
        FileMode { ftype: FileType::Symlink, perm: 0o777 }
    }
}

impl Default for FileMode {
    fn default() -> Self {
        FileMode::file(0o644)
    }
}

/// Identity of a calling process, used for permission checks. Simurgh
/// captures these at preload time and stores them in the protected pages
/// (§3.2); the kernel baselines read them per syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Credentials {
    pub uid: u32,
    pub gid: u32,
}

impl Credentials {
    /// Superuser: passes every permission check.
    pub const ROOT: Credentials = Credentials { uid: 0, gid: 0 };

    /// An ordinary user.
    pub const fn user(uid: u32, gid: u32) -> Self {
        Credentials { uid, gid }
    }

    /// POSIX permission check of `want` bits (4=r, 2=w, 1=x) against an
    /// object owned by `owner_uid`/`owner_gid` with permission mask `perm`.
    pub fn may(&self, want: u16, perm: u16, owner_uid: u32, owner_gid: u32) -> bool {
        if self.uid == 0 {
            return true;
        }
        let class_shift = if self.uid == owner_uid {
            6
        } else if self.gid == owner_gid {
            3
        } else {
            0
        };
        (perm >> class_shift) & want == want
    }
}

/// Access-intent bits for [`Credentials::may`].
pub mod access {
    /// Read intent.
    pub const R: u16 = 4;
    /// Write intent.
    pub const W: u16 = 2;
    /// Execute / directory-search intent.
    pub const X: u16 = 1;
}

/// Open flags (subset of POSIX the workloads use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    pub read: bool,
    pub write: bool,
    pub create: bool,
    pub excl: bool,
    pub truncate: bool,
    pub append: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub const RDONLY: OpenFlags =
        OpenFlags { read: true, write: false, create: false, excl: false, truncate: false, append: false };
    /// `O_WRONLY`.
    pub const WRONLY: OpenFlags =
        OpenFlags { read: false, write: true, create: false, excl: false, truncate: false, append: false };
    /// `O_RDWR`.
    pub const RDWR: OpenFlags =
        OpenFlags { read: true, write: true, create: false, excl: false, truncate: false, append: false };

    /// `O_CREAT | O_WRONLY | O_TRUNC` — the classic "create for writing".
    pub const CREATE: OpenFlags =
        OpenFlags { read: false, write: true, create: true, excl: false, truncate: true, append: false };

    /// `O_CREAT | O_WRONLY | O_APPEND`.
    pub const APPEND: OpenFlags =
        OpenFlags { read: false, write: true, create: true, excl: false, truncate: false, append: true };

    /// Adds `O_EXCL` (implies `O_CREAT`): fail if the path already exists.
    pub fn with_excl(mut self) -> Self {
        self.excl = true;
        self.create = true;
        self
    }
}

/// File-system level statistics, i.e. `statvfs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsStats {
    /// Total capacity of the underlying device in bytes.
    pub total_bytes: u64,
    /// Bytes currently allocatable for file data.
    pub free_bytes: u64,
    /// Device block size.
    pub block_size: u32,
}

/// Seek origin for `lseek`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekFrom {
    Start(u64),
    Current(i64),
    End(i64),
}

/// File metadata, i.e. `struct stat`. `ino` is the implementation's stable
/// identifier — for Simurgh it is the persistent pointer itself (§4.3
/// "Inode": the 64-bit persistent pointer acts as the unique inode id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    pub ino: u64,
    pub mode: FileMode,
    pub uid: u32,
    pub gid: u32,
    pub size: u64,
    pub nlink: u32,
    pub atime: u64,
    pub mtime: u64,
    pub ctime: u64,
}

impl Stat {
    /// Whether this is a directory.
    pub fn is_dir(&self) -> bool {
        self.mode.ftype == FileType::Directory
    }

    /// Whether this is a regular file.
    pub fn is_file(&self) -> bool {
        self.mode.ftype == FileType::Regular
    }

    /// Whether this is a symbolic link.
    pub fn is_symlink(&self) -> bool {
        self.mode.ftype == FileType::Symlink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_bypasses_permissions() {
        assert!(Credentials::ROOT.may(access::W, 0o000, 1000, 1000));
    }

    #[test]
    fn owner_class_is_used_for_owner() {
        let c = Credentials::user(1000, 100);
        assert!(c.may(access::R | access::W, 0o600, 1000, 999));
        assert!(!c.may(access::X, 0o600, 1000, 999));
        // Owner match uses owner bits even if group/world bits are wider.
        assert!(!c.may(access::W, 0o477, 1000, 100));
    }

    #[test]
    fn group_and_other_classes() {
        let c = Credentials::user(1000, 100);
        assert!(c.may(access::R, 0o040, 1, 100), "group read");
        assert!(!c.may(access::W, 0o040, 1, 100));
        assert!(c.may(access::R, 0o004, 1, 2), "other read");
        assert!(!c.may(access::R, 0o040, 1, 2), "not in group");
    }

    #[test]
    fn open_flag_presets() {
        let create = OpenFlags::CREATE;
        assert!(create.create && create.truncate && create.write);
        let append = OpenFlags::APPEND;
        assert!(append.append && !append.truncate);
        let x = OpenFlags::WRONLY.with_excl();
        assert!(x.excl && x.create);
        let rdonly = OpenFlags::RDONLY;
        assert!(rdonly.read && !rdonly.write);
    }

    #[test]
    fn mode_constructors() {
        assert_eq!(FileMode::file(0o644).ftype, FileType::Regular);
        assert_eq!(FileMode::dir(0o755).ftype, FileType::Directory);
        assert_eq!(FileMode::symlink().ftype, FileType::Symlink);
        assert_eq!(FileMode::default().perm, 0o644);
    }

    #[test]
    fn stat_kind_helpers() {
        let mut s = Stat {
            ino: 1,
            mode: FileMode::dir(0o755),
            uid: 0,
            gid: 0,
            size: 0,
            nlink: 2,
            atime: 0,
            mtime: 0,
            ctime: 0,
        };
        assert!(s.is_dir() && !s.is_file());
        s.mode = FileMode::symlink();
        assert!(s.is_symlink());
    }
}
