//! Execution-time breakdown instrumentation.
//!
//! Table 1 of the paper splits application runtime into *application*,
//! *data copy* and *file system* shares (measured with `perf` for NOVA);
//! Fig. 10 repeats the split for Simurgh under YCSB. Here each file-system
//! implementation charges the time of every public operation to
//! [`OpTimers::fs_ns`], and the bulk memcpy portions of the data path to
//! [`OpTimers::copy_ns`]; the harness derives the application share from
//! wall-clock time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Where a measured span of time is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerCategory {
    /// Time inside file-system code (excluding data copies).
    Fs,
    /// Time moving data between NVMM and application buffers.
    Copy,
}

/// Accumulated time counters for one file-system instance.
#[derive(Default)]
pub struct OpTimers {
    fs_ns: AtomicU64,
    copy_ns: AtomicU64,
    ops: AtomicU64,
}

impl OpTimers {
    /// Runs `f`, charging its duration to `cat`. Nested spans are the
    /// caller's responsibility: the FS charges `Fs` around whole operations
    /// and `Copy` around the inner memcpy, and the harness subtracts.
    #[inline]
    pub fn time<R>(&self, cat: TimerCategory, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let ns = start.elapsed().as_nanos() as u64;
        match cat {
            TimerCategory::Fs => {
                self.fs_ns.fetch_add(ns, Ordering::Relaxed);
                self.ops.fetch_add(1, Ordering::Relaxed);
            }
            TimerCategory::Copy => {
                self.copy_ns.fetch_add(ns, Ordering::Relaxed);
            }
        }
        out
    }

    /// Total nanoseconds charged to file-system code (copies included;
    /// subtract [`copy_ns`](Self::copy_ns) for the exclusive share).
    pub fn fs_ns(&self) -> u64 {
        self.fs_ns.load(Ordering::Relaxed)
    }

    /// Total nanoseconds charged to data copies.
    pub fn copy_ns(&self) -> u64 {
        self.copy_ns.load(Ordering::Relaxed)
    }

    /// Number of `Fs` spans recorded.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Renders the counters as a single-line JSON object, for embedding in
    /// the unified observability registry (`simurgh_core::obs`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"fs_ns\":{},\"copy_ns\":{},\"ops\":{}}}",
            self.fs_ns(),
            self.copy_ns(),
            self.ops()
        )
    }

    /// Resets all counters (between benchmark phases).
    pub fn reset(&self) {
        self.fs_ns.store(0, Ordering::Relaxed);
        self.copy_ns.store(0, Ordering::Relaxed);
        self.ops.store(0, Ordering::Relaxed);
    }

    /// Derives the paper-style three-way breakdown from total wall time.
    pub fn breakdown(&self, wall_ns: u64) -> Breakdown {
        let fs_total = self.fs_ns();
        let copy = self.copy_ns().min(fs_total);
        let fs_excl = fs_total - copy;
        let app = wall_ns.saturating_sub(fs_total);
        Breakdown { app_ns: app, copy_ns: copy, fs_ns: fs_excl }
    }
}

/// File systems that expose breakdown timers (Table 1 / Fig. 10 harness).
pub trait Instrumented {
    fn timers(&self) -> &OpTimers;
}

/// The paper's three-way execution-time split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breakdown {
    pub app_ns: u64,
    pub copy_ns: u64,
    pub fs_ns: u64,
}

impl Breakdown {
    /// Sum of the three components.
    pub fn total_ns(&self) -> u64 {
        self.app_ns + self.copy_ns + self.fs_ns
    }

    /// Percentages in the order Table 1 reports them:
    /// (application, data copy, file system).
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total_ns().max(1) as f64;
        (
            self.app_ns as f64 / t * 100.0,
            self.copy_ns as f64 / t * 100.0,
            self.fs_ns as f64 / t * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate() {
        let t = OpTimers::default();
        t.time(TimerCategory::Fs, || std::thread::sleep(std::time::Duration::from_millis(2)));
        t.time(TimerCategory::Copy, || std::thread::sleep(std::time::Duration::from_millis(1)));
        assert!(t.fs_ns() >= 2_000_000);
        assert!(t.copy_ns() >= 1_000_000);
        assert_eq!(t.ops(), 1, "only Fs spans count as ops");
        t.reset();
        assert_eq!(t.fs_ns(), 0);
        assert_eq!(t.ops(), 0);
    }

    #[test]
    fn breakdown_partitions_wall_time() {
        let t = OpTimers::default();
        t.time(TimerCategory::Fs, || {
            t.time(TimerCategory::Copy, || std::hint::black_box(()));
        });
        let b = t.breakdown(t.fs_ns() + 500);
        assert_eq!(b.app_ns, 500);
        assert_eq!(b.copy_ns + b.fs_ns, t.fs_ns());
        let (a, c, f) = b.percentages();
        assert!((a + c + f - 100.0).abs() < 1e-6);
    }

    #[test]
    fn breakdown_saturates_when_fs_exceeds_wall() {
        let t = OpTimers::default();
        t.time(TimerCategory::Fs, || std::thread::sleep(std::time::Duration::from_millis(1)));
        let b = t.breakdown(10); // tiny wall clock
        assert_eq!(b.app_ns, 0);
    }
}
