//! Common file-system interface for the Simurgh reproduction.
//!
//! Simurgh is benchmarked against four other file systems across identical
//! workloads, so every implementation — `simurgh-core` and each model in
//! `simurgh-baselines` — speaks the same POSIX-like [`FileSystem`] trait
//! defined here. The crate also carries the shared vocabulary types
//! (credentials, modes, stat, errors), path handling, an instrumentation
//! layer for the paper's execution-time breakdowns (Table 1, Fig. 10), and
//! [`reffs::RefFs`], a deliberately simple in-memory reference file system
//! used as the oracle in differential and property tests.

/// Error vocabulary: [`FsError`], errno mappings, `io::Error` conversions.
pub mod error;
/// The [`FileSystem`] trait and its default helper methods.
pub mod fs;
/// Lexical path normalization and name validation.
pub mod path;
/// Per-operation instrumentation for the paper's time breakdowns.
pub mod profile;
/// In-memory reference file system used as the test oracle.
pub mod reffs;
/// Shared vocabulary types: modes, flags, stat, credentials.
pub mod types;
/// Serializable wire form of the trait: `Request`/`Response` + codec.
pub mod wire;

pub use error::{FsError, FsResult};
pub use fs::{DirEntry, FileSystem, ProcCtx, TreeEntry};
pub use profile::{Breakdown, Instrumented, OpTimers, TimerCategory};
pub use types::{Credentials, Fd, FileMode, FileType, FsStats, OpenFlags, SeekFrom, Stat};

/// Maximum file-name length accepted by every implementation (bytes).
pub const NAME_MAX: usize = 230;
