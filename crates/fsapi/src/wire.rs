//! Versioned wire form of the [`FileSystem`] trait.
//!
//! `simurgh-served` exposes the syscall-free data path over a socket, which
//! needs a serializable twin of the in-process trait: [`Request`] and
//! [`Response`] mirror every `FileSystem` method one-to-one, and the
//! `wire-parity` rule in `simurgh-analyze` plus the conformance tests in
//! `tests/tests/wire.rs` fail the build if the two ever drift.
//!
//! Framing is length-prefixed binary: every message is a little-endian
//! `u32` body length followed by the body; request bodies start with a
//! one-byte opcode, response bodies with a one-byte tag. There is no
//! self-description — both sides pin [`PROTOCOL_VERSION`] during the
//! [`Hello`]/[`HelloOk`] handshake and a mismatch is refused before the
//! first op.
//!
//! Two deliberate asymmetries against the trait:
//!
//! * **No `ProcCtx` on the wire.** The caller identity that scopes fd
//!   tables is assigned by the *server* at handshake time (the connection
//!   id) — a client-supplied pid would let one connection collide another
//!   connection's descriptors (see `OpenTable`). Only credentials travel,
//!   once, inside [`Hello`].
//! * **Reads return data, not lengths.** `read`/`pread` fill a
//!   caller-provided buffer in process; over the wire the server allocates
//!   and ships the bytes back ([`Response::Data`]).
//!
//! [`FileSystem`]: crate::FileSystem

use crate::error::FsError;
use crate::types::{
    Credentials, Fd, FileMode, FileType, FsStats, OpenFlags, SeekFrom, Stat,
};
use crate::{DirEntry, TreeEntry};

/// Wire protocol version; bumped on any incompatible framing change.
pub const PROTOCOL_VERSION: u16 = 1;

/// Magic word opening the [`Hello`]/[`HelloOk`] handshake frames, so a
/// stray client speaking another protocol is refused on the first frame.
pub const HELLO_MAGIC: u32 = 0x5349_4D57; // "SIMW"

/// Upper bound on one frame body. Larger frames are a protocol error: the
/// server closes the connection rather than buffering unbounded input.
pub const MAX_FRAME: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Decode errors
// ---------------------------------------------------------------------------

/// Why a frame failed to decode. Any of these on a live connection is a
/// protocol error — the peer is mis-framed, stale-versioned or hostile —
/// and the connection is closed rather than resynchronized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Body ended before the advertised field width.
    Truncated,
    /// Unknown opcode / tag byte for the named message kind.
    BadTag(&'static str, u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Frame length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// Handshake magic or version mismatch.
    BadHandshake,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("truncated frame"),
            DecodeError::BadTag(what, tag) => write!(f, "bad {what} tag {tag:#04x}"),
            DecodeError::BadUtf8 => f.write_str("non-UTF-8 string field"),
            DecodeError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME"),
            DecodeError::BadHandshake => f.write_str("bad handshake magic/version"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

/// Sequential reader over one frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME {
            return Err(DecodeError::FrameTooLarge(n));
        }
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?).map_err(|_| DecodeError::BadUtf8)
    }

    fn finish(self) -> Result<(), DecodeError> {
        // Trailing garbage means mis-framing; refuse rather than ignore.
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Truncated)
        }
    }
}

// ---------------------------------------------------------------------------
// Vocabulary-type codecs
// ---------------------------------------------------------------------------

fn put_ftype(buf: &mut Vec<u8>, t: FileType) {
    put_u8(
        buf,
        match t {
            FileType::Regular => 0,
            FileType::Directory => 1,
            FileType::Symlink => 2,
        },
    );
}

fn get_ftype(c: &mut Cursor<'_>) -> Result<FileType, DecodeError> {
    match c.u8()? {
        0 => Ok(FileType::Regular),
        1 => Ok(FileType::Directory),
        2 => Ok(FileType::Symlink),
        t => Err(DecodeError::BadTag("FileType", t)),
    }
}

fn put_mode(buf: &mut Vec<u8>, m: FileMode) {
    put_ftype(buf, m.ftype);
    put_u16(buf, m.perm);
}

fn get_mode(c: &mut Cursor<'_>) -> Result<FileMode, DecodeError> {
    Ok(FileMode { ftype: get_ftype(c)?, perm: c.u16()? })
}

fn put_flags(buf: &mut Vec<u8>, f: OpenFlags) {
    let bits = (f.read as u8)
        | (f.write as u8) << 1
        | (f.create as u8) << 2
        | (f.excl as u8) << 3
        | (f.truncate as u8) << 4
        | (f.append as u8) << 5;
    put_u8(buf, bits);
}

fn get_flags(c: &mut Cursor<'_>) -> Result<OpenFlags, DecodeError> {
    let bits = c.u8()?;
    if bits & !0x3f != 0 {
        return Err(DecodeError::BadTag("OpenFlags", bits));
    }
    Ok(OpenFlags {
        read: bits & 1 != 0,
        write: bits & 2 != 0,
        create: bits & 4 != 0,
        excl: bits & 8 != 0,
        truncate: bits & 16 != 0,
        append: bits & 32 != 0,
    })
}

fn put_seek(buf: &mut Vec<u8>, s: SeekFrom) {
    match s {
        SeekFrom::Start(v) => {
            put_u8(buf, 0);
            put_u64(buf, v);
        }
        SeekFrom::Current(v) => {
            put_u8(buf, 1);
            put_i64(buf, v);
        }
        SeekFrom::End(v) => {
            put_u8(buf, 2);
            put_i64(buf, v);
        }
    }
}

fn get_seek(c: &mut Cursor<'_>) -> Result<SeekFrom, DecodeError> {
    match c.u8()? {
        0 => Ok(SeekFrom::Start(c.u64()?)),
        1 => Ok(SeekFrom::Current(c.i64()?)),
        2 => Ok(SeekFrom::End(c.i64()?)),
        t => Err(DecodeError::BadTag("SeekFrom", t)),
    }
}

fn put_stat(buf: &mut Vec<u8>, s: &Stat) {
    put_u64(buf, s.ino);
    put_mode(buf, s.mode);
    put_u32(buf, s.uid);
    put_u32(buf, s.gid);
    put_u64(buf, s.size);
    put_u32(buf, s.nlink);
    put_u64(buf, s.atime);
    put_u64(buf, s.mtime);
    put_u64(buf, s.ctime);
}

fn get_stat(c: &mut Cursor<'_>) -> Result<Stat, DecodeError> {
    Ok(Stat {
        ino: c.u64()?,
        mode: get_mode(c)?,
        uid: c.u32()?,
        gid: c.u32()?,
        size: c.u64()?,
        nlink: c.u32()?,
        atime: c.u64()?,
        mtime: c.u64()?,
        ctime: c.u64()?,
    })
}

// ---------------------------------------------------------------------------
// FsError wire form
// ---------------------------------------------------------------------------

/// Interns a decoded detail string, giving back the `&'static str` that
/// `FsError::Corrupt`/`Injected` carry in process. The pool deduplicates,
/// so the leak is bounded by the number of *distinct* detail strings a
/// peer ever sends — in practice the handful of literal sites in core.
fn intern(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL.get_or_init(|| Mutex::new(HashSet::new())).lock().unwrap();
    if let Some(&have) = pool.get(s) {
        return have;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// Encodes an [`FsError`] into `buf`: a one-byte variant tag, a detail
/// string for the payload-carrying variants, and — for variants this
/// protocol version does not know (`#[non_exhaustive]` future additions) —
/// a catch-all tag carrying the errno and rendered message, so an old peer
/// still sees the right errno.
fn put_err(buf: &mut Vec<u8>, e: &FsError) {
    let tag = match e {
        FsError::NotFound => 0u8,
        FsError::Exists => 1,
        FsError::NotDir => 2,
        FsError::IsDir => 3,
        FsError::NotEmpty => 4,
        FsError::Access => 5,
        FsError::NoSpace => 6,
        FsError::BadFd => 7,
        FsError::NameTooLong => 8,
        FsError::Invalid => 9,
        FsError::TooManyLinks => 10,
        FsError::Unsupported => 11,
        FsError::Corrupt(_) => 12,
        FsError::Injected(_) => 13,
        // `FsError` is `#[non_exhaustive]`: unreachable today inside the
        // defining crate, load-bearing the day a variant is added.
        #[allow(unreachable_patterns)]
        _ => 255,
    };
    put_u8(buf, tag);
    match e {
        FsError::Corrupt(what) => put_str(buf, what),
        FsError::Injected(site) => put_str(buf, site),
        _ if tag == 255 => {
            // Future variant: errno + rendering keep the failure meaningful
            // across a version skew even though the exact variant is lost.
            put_u32(buf, e.errno() as u32);
            put_str(buf, &e.to_string());
        }
        _ => {}
    }
}

/// Decodes an [`FsError`] written by [`put_err`]. Unknown-variant
/// catch-alls map back through the errno table, collapsing to the closest
/// known variant.
fn get_err(c: &mut Cursor<'_>) -> Result<FsError, DecodeError> {
    Ok(match c.u8()? {
        0 => FsError::NotFound,
        1 => FsError::Exists,
        2 => FsError::NotDir,
        3 => FsError::IsDir,
        4 => FsError::NotEmpty,
        5 => FsError::Access,
        6 => FsError::NoSpace,
        7 => FsError::BadFd,
        8 => FsError::NameTooLong,
        9 => FsError::Invalid,
        10 => FsError::TooManyLinks,
        11 => FsError::Unsupported,
        12 => FsError::Corrupt(intern(&c.string()?)),
        13 => FsError::Injected(intern(&c.string()?)),
        255 => {
            let errno = c.u32()? as i32;
            let _rendering = c.string()?;
            std::io::Error::from_raw_os_error(errno).into()
        }
        t => return Err(DecodeError::BadTag("FsError", t)),
    })
}

/// Round-trips an [`FsError`] through its wire form (test/fuzz surface for
/// the encode→decode→encode property).
pub fn err_round_trip(e: &FsError) -> Result<FsError, DecodeError> {
    let mut buf = Vec::new();
    put_err(&mut buf, e);
    let mut c = Cursor::new(&buf);
    let back = get_err(&mut c)?;
    c.finish()?;
    Ok(back)
}

/// Encodes `e` to its standalone wire bytes (property tests compare the
/// byte strings of both encode passes).
pub fn err_bytes(e: &FsError) -> Vec<u8> {
    let mut buf = Vec::new();
    put_err(&mut buf, e);
    buf
}

/// Decodes the standalone wire bytes of one [`FsError`] (the inverse of
/// [`err_bytes`]; rejects trailing garbage).
pub fn err_from_bytes(body: &[u8]) -> Result<FsError, DecodeError> {
    let mut c = Cursor::new(body);
    let e = get_err(&mut c)?;
    c.finish()?;
    Ok(e)
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// First frame a client sends: protocol version plus the credentials the
/// server should attach to every op on this connection. The kernel would
/// authenticate these via `SO_PEERCRED`; this reproduction trusts the
/// client's claim, like the paper's preload shim trusts `getuid()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Client's [`PROTOCOL_VERSION`]; the server refuses a mismatch.
    pub version: u16,
    /// Identity for permission checks on this connection.
    pub creds: Credentials,
}

impl Hello {
    /// Encodes the handshake frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(14);
        put_u32(&mut buf, HELLO_MAGIC);
        put_u16(&mut buf, self.version);
        put_u32(&mut buf, self.creds.uid);
        put_u32(&mut buf, self.creds.gid);
        buf
    }

    /// Decodes a handshake frame body.
    pub fn decode(body: &[u8]) -> Result<Hello, DecodeError> {
        let mut c = Cursor::new(body);
        if c.u32()? != HELLO_MAGIC {
            return Err(DecodeError::BadHandshake);
        }
        let h = Hello {
            version: c.u16()?,
            creds: Credentials { uid: c.u32()?, gid: c.u32()? },
        };
        c.finish()?;
        Ok(h)
    }
}

/// Server's handshake reply: the negotiated version and the
/// server-assigned connection id that namespaces every fd this connection
/// opens. Clients never send an id of their own — that is the fix for the
/// fd-collision hole a client-supplied pid would open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloOk {
    /// Server's [`PROTOCOL_VERSION`].
    pub version: u16,
    /// Server-assigned connection id (the fd namespace for this session).
    pub conn_id: u32,
}

impl HelloOk {
    /// Encodes the handshake-reply frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(10);
        put_u32(&mut buf, HELLO_MAGIC);
        put_u16(&mut buf, self.version);
        put_u32(&mut buf, self.conn_id);
        buf
    }

    /// Decodes a handshake-reply frame body.
    pub fn decode(body: &[u8]) -> Result<HelloOk, DecodeError> {
        let mut c = Cursor::new(body);
        if c.u32()? != HELLO_MAGIC {
            return Err(DecodeError::BadHandshake);
        }
        let h = HelloOk { version: c.u16()?, conn_id: c.u32()? };
        c.finish()?;
        Ok(h)
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One `FileSystem` call in wire form — exactly one variant per trait
/// method, in trait declaration order. The `wire-parity` analyzer rule
/// pins the correspondence (method without variant, or variant without a
/// dispatch arm in `simurgh-served`, fails tier-1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `FileSystem::name`.
    Name,
    /// `FileSystem::open`.
    Open {
        /// Path to open.
        path: String,
        /// Open flags.
        flags: OpenFlags,
        /// Creation mode (applies with `flags.create`).
        mode: FileMode,
    },
    /// `FileSystem::create`.
    Create {
        /// Path to create.
        path: String,
        /// Creation mode.
        mode: FileMode,
    },
    /// `FileSystem::close`.
    Close {
        /// Descriptor to close.
        fd: Fd,
    },
    /// `FileSystem::read` — the server allocates up to `len` bytes and
    /// ships them back ([`Response::Data`]).
    Read {
        /// Descriptor to read from.
        fd: Fd,
        /// Maximum bytes to return.
        len: u32,
    },
    /// `FileSystem::write`.
    Write {
        /// Descriptor to write to.
        fd: Fd,
        /// Bytes to append at the descriptor position.
        data: Vec<u8>,
    },
    /// `FileSystem::pread`.
    Pread {
        /// Descriptor to read from.
        fd: Fd,
        /// Maximum bytes to return.
        len: u32,
        /// Absolute file offset.
        off: u64,
    },
    /// `FileSystem::pwrite`.
    Pwrite {
        /// Descriptor to write to.
        fd: Fd,
        /// Bytes to store at `off`.
        data: Vec<u8>,
        /// Absolute file offset.
        off: u64,
    },
    /// `FileSystem::lseek`.
    Lseek {
        /// Descriptor to reposition.
        fd: Fd,
        /// Seek origin and delta.
        pos: SeekFrom,
    },
    /// `FileSystem::fsync`.
    Fsync {
        /// Descriptor to flush.
        fd: Fd,
    },
    /// `FileSystem::fstat`.
    Fstat {
        /// Descriptor to stat.
        fd: Fd,
    },
    /// `FileSystem::ftruncate`.
    Ftruncate {
        /// Descriptor to resize.
        fd: Fd,
        /// New length in bytes.
        len: u64,
    },
    /// `FileSystem::fallocate`.
    Fallocate {
        /// Descriptor to preallocate within.
        fd: Fd,
        /// Range start.
        off: u64,
        /// Range length.
        len: u64,
    },
    /// `FileSystem::unlink`.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// `FileSystem::mkdir`.
    Mkdir {
        /// Directory path to create.
        path: String,
        /// Creation mode.
        mode: FileMode,
    },
    /// `FileSystem::rmdir`.
    Rmdir {
        /// Directory path to remove.
        path: String,
    },
    /// `FileSystem::rename`.
    Rename {
        /// Existing path.
        old: String,
        /// Destination path.
        new: String,
    },
    /// `FileSystem::stat`.
    Stat {
        /// Path to stat.
        path: String,
    },
    /// `FileSystem::readdir`.
    Readdir {
        /// Directory path to list.
        path: String,
    },
    /// `FileSystem::symlink`.
    Symlink {
        /// Link target (stored verbatim).
        target: String,
        /// Path of the new symlink.
        linkpath: String,
    },
    /// `FileSystem::readlink`.
    Readlink {
        /// Symlink path to read.
        path: String,
    },
    /// `FileSystem::link`.
    Link {
        /// Existing file path.
        existing: String,
        /// New hard-link path.
        new: String,
    },
    /// `FileSystem::chmod`.
    Chmod {
        /// Path to re-mode.
        path: String,
        /// New 9-bit permission mask.
        perm: u16,
    },
    /// `FileSystem::set_times`.
    SetTimes {
        /// Path to touch.
        path: String,
        /// New access time.
        atime: u64,
        /// New modification time.
        mtime: u64,
    },
    /// `FileSystem::statfs`.
    Statfs,
    /// `FileSystem::read_file`.
    ReadFile {
        /// Path to read in full.
        path: String,
    },
    /// `FileSystem::read_to_vec`.
    ReadToVec {
        /// Path to read in full.
        path: String,
    },
    /// `FileSystem::write_file`.
    WriteFile {
        /// Path to create/truncate.
        path: String,
        /// Full new contents.
        data: Vec<u8>,
    },
    /// `FileSystem::snapshot_tree`.
    SnapshotTree {
        /// Root of the tree walk.
        root: String,
    },
}

/// Discriminant-only view of [`Request`], used by the conformance tests to
/// enumerate the wire surface exhaustively. `Request::kind` is an
/// exhaustive `match`, so adding a `Request` variant without extending
/// [`RequestKind::ALL`] (and the tests walking it) fails to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// `Request::Name`.
    Name,
    /// `Request::Open`.
    Open,
    /// `Request::Create`.
    Create,
    /// `Request::Close`.
    Close,
    /// `Request::Read`.
    Read,
    /// `Request::Write`.
    Write,
    /// `Request::Pread`.
    Pread,
    /// `Request::Pwrite`.
    Pwrite,
    /// `Request::Lseek`.
    Lseek,
    /// `Request::Fsync`.
    Fsync,
    /// `Request::Fstat`.
    Fstat,
    /// `Request::Ftruncate`.
    Ftruncate,
    /// `Request::Fallocate`.
    Fallocate,
    /// `Request::Unlink`.
    Unlink,
    /// `Request::Mkdir`.
    Mkdir,
    /// `Request::Rmdir`.
    Rmdir,
    /// `Request::Rename`.
    Rename,
    /// `Request::Stat`.
    Stat,
    /// `Request::Readdir`.
    Readdir,
    /// `Request::Symlink`.
    Symlink,
    /// `Request::Readlink`.
    Readlink,
    /// `Request::Link`.
    Link,
    /// `Request::Chmod`.
    Chmod,
    /// `Request::SetTimes`.
    SetTimes,
    /// `Request::Statfs`.
    Statfs,
    /// `Request::ReadFile`.
    ReadFile,
    /// `Request::ReadToVec`.
    ReadToVec,
    /// `Request::WriteFile`.
    WriteFile,
    /// `Request::SnapshotTree`.
    SnapshotTree,
}

impl RequestKind {
    /// Number of wire ops — one per `FileSystem` method.
    pub const COUNT: usize = 29;

    /// Every wire op, in trait declaration order.
    pub const ALL: [RequestKind; RequestKind::COUNT] = [
        RequestKind::Name,
        RequestKind::Open,
        RequestKind::Create,
        RequestKind::Close,
        RequestKind::Read,
        RequestKind::Write,
        RequestKind::Pread,
        RequestKind::Pwrite,
        RequestKind::Lseek,
        RequestKind::Fsync,
        RequestKind::Fstat,
        RequestKind::Ftruncate,
        RequestKind::Fallocate,
        RequestKind::Unlink,
        RequestKind::Mkdir,
        RequestKind::Rmdir,
        RequestKind::Rename,
        RequestKind::Stat,
        RequestKind::Readdir,
        RequestKind::Symlink,
        RequestKind::Readlink,
        RequestKind::Link,
        RequestKind::Chmod,
        RequestKind::SetTimes,
        RequestKind::Statfs,
        RequestKind::ReadFile,
        RequestKind::ReadToVec,
        RequestKind::WriteFile,
        RequestKind::SnapshotTree,
    ];

    /// The `FileSystem` trait method this wire op mirrors.
    pub fn method_name(self) -> &'static str {
        match self {
            RequestKind::Name => "name",
            RequestKind::Open => "open",
            RequestKind::Create => "create",
            RequestKind::Close => "close",
            RequestKind::Read => "read",
            RequestKind::Write => "write",
            RequestKind::Pread => "pread",
            RequestKind::Pwrite => "pwrite",
            RequestKind::Lseek => "lseek",
            RequestKind::Fsync => "fsync",
            RequestKind::Fstat => "fstat",
            RequestKind::Ftruncate => "ftruncate",
            RequestKind::Fallocate => "fallocate",
            RequestKind::Unlink => "unlink",
            RequestKind::Mkdir => "mkdir",
            RequestKind::Rmdir => "rmdir",
            RequestKind::Rename => "rename",
            RequestKind::Stat => "stat",
            RequestKind::Readdir => "readdir",
            RequestKind::Symlink => "symlink",
            RequestKind::Readlink => "readlink",
            RequestKind::Link => "link",
            RequestKind::Chmod => "chmod",
            RequestKind::SetTimes => "set_times",
            RequestKind::Statfs => "statfs",
            RequestKind::ReadFile => "read_file",
            RequestKind::ReadToVec => "read_to_vec",
            RequestKind::WriteFile => "write_file",
            RequestKind::SnapshotTree => "snapshot_tree",
        }
    }
}

impl Request {
    /// The discriminant of this request. Exhaustive by construction: a new
    /// variant fails to compile until it is added here (and, transitively,
    /// to the conformance walk over [`RequestKind::ALL`]).
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Name => RequestKind::Name,
            Request::Open { .. } => RequestKind::Open,
            Request::Create { .. } => RequestKind::Create,
            Request::Close { .. } => RequestKind::Close,
            Request::Read { .. } => RequestKind::Read,
            Request::Write { .. } => RequestKind::Write,
            Request::Pread { .. } => RequestKind::Pread,
            Request::Pwrite { .. } => RequestKind::Pwrite,
            Request::Lseek { .. } => RequestKind::Lseek,
            Request::Fsync { .. } => RequestKind::Fsync,
            Request::Fstat { .. } => RequestKind::Fstat,
            Request::Ftruncate { .. } => RequestKind::Ftruncate,
            Request::Fallocate { .. } => RequestKind::Fallocate,
            Request::Unlink { .. } => RequestKind::Unlink,
            Request::Mkdir { .. } => RequestKind::Mkdir,
            Request::Rmdir { .. } => RequestKind::Rmdir,
            Request::Rename { .. } => RequestKind::Rename,
            Request::Stat { .. } => RequestKind::Stat,
            Request::Readdir { .. } => RequestKind::Readdir,
            Request::Symlink { .. } => RequestKind::Symlink,
            Request::Readlink { .. } => RequestKind::Readlink,
            Request::Link { .. } => RequestKind::Link,
            Request::Chmod { .. } => RequestKind::Chmod,
            Request::SetTimes { .. } => RequestKind::SetTimes,
            Request::Statfs => RequestKind::Statfs,
            Request::ReadFile { .. } => RequestKind::ReadFile,
            Request::ReadToVec { .. } => RequestKind::ReadToVec,
            Request::WriteFile { .. } => RequestKind::WriteFile,
            Request::SnapshotTree { .. } => RequestKind::SnapshotTree,
        }
    }

    /// Encodes the frame body (opcode + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        let op = self.kind() as u8 + 1; // opcode 0 is reserved
        put_u8(&mut buf, op);
        match self {
            Request::Name | Request::Statfs => {}
            Request::Open { path, flags, mode } => {
                put_str(&mut buf, path);
                put_flags(&mut buf, *flags);
                put_mode(&mut buf, *mode);
            }
            Request::Create { path, mode } => {
                put_str(&mut buf, path);
                put_mode(&mut buf, *mode);
            }
            Request::Close { fd } | Request::Fsync { fd } | Request::Fstat { fd } => {
                put_u32(&mut buf, fd.0);
            }
            Request::Read { fd, len } => {
                put_u32(&mut buf, fd.0);
                put_u32(&mut buf, *len);
            }
            Request::Write { fd, data } => {
                put_u32(&mut buf, fd.0);
                put_bytes(&mut buf, data);
            }
            Request::Pread { fd, len, off } => {
                put_u32(&mut buf, fd.0);
                put_u32(&mut buf, *len);
                put_u64(&mut buf, *off);
            }
            Request::Pwrite { fd, data, off } => {
                put_u32(&mut buf, fd.0);
                put_bytes(&mut buf, data);
                put_u64(&mut buf, *off);
            }
            Request::Lseek { fd, pos } => {
                put_u32(&mut buf, fd.0);
                put_seek(&mut buf, *pos);
            }
            Request::Ftruncate { fd, len } => {
                put_u32(&mut buf, fd.0);
                put_u64(&mut buf, *len);
            }
            Request::Fallocate { fd, off, len } => {
                put_u32(&mut buf, fd.0);
                put_u64(&mut buf, *off);
                put_u64(&mut buf, *len);
            }
            Request::Unlink { path }
            | Request::Rmdir { path }
            | Request::Stat { path }
            | Request::Readdir { path }
            | Request::Readlink { path }
            | Request::ReadFile { path }
            | Request::ReadToVec { path } => put_str(&mut buf, path),
            Request::Mkdir { path, mode } => {
                put_str(&mut buf, path);
                put_mode(&mut buf, *mode);
            }
            Request::Rename { old, new } => {
                put_str(&mut buf, old);
                put_str(&mut buf, new);
            }
            Request::Symlink { target, linkpath } => {
                put_str(&mut buf, target);
                put_str(&mut buf, linkpath);
            }
            Request::Link { existing, new } => {
                put_str(&mut buf, existing);
                put_str(&mut buf, new);
            }
            Request::Chmod { path, perm } => {
                put_str(&mut buf, path);
                put_u16(&mut buf, *perm);
            }
            Request::SetTimes { path, atime, mtime } => {
                put_str(&mut buf, path);
                put_u64(&mut buf, *atime);
                put_u64(&mut buf, *mtime);
            }
            Request::WriteFile { path, data } => {
                put_str(&mut buf, path);
                put_bytes(&mut buf, data);
            }
            Request::SnapshotTree { root } => put_str(&mut buf, root),
        }
        buf
    }

    /// Decodes a frame body produced by [`Request::encode`].
    pub fn decode(body: &[u8]) -> Result<Request, DecodeError> {
        let mut c = Cursor::new(body);
        let op = c.u8()?;
        let kind = *RequestKind::ALL
            .get(op.wrapping_sub(1) as usize)
            .ok_or(DecodeError::BadTag("Request", op))?;
        let req = match kind {
            RequestKind::Name => Request::Name,
            RequestKind::Open => Request::Open {
                path: c.string()?,
                flags: get_flags(&mut c)?,
                mode: get_mode(&mut c)?,
            },
            RequestKind::Create => Request::Create { path: c.string()?, mode: get_mode(&mut c)? },
            RequestKind::Close => Request::Close { fd: Fd(c.u32()?) },
            RequestKind::Read => Request::Read { fd: Fd(c.u32()?), len: c.u32()? },
            RequestKind::Write => Request::Write { fd: Fd(c.u32()?), data: c.bytes()? },
            RequestKind::Pread => {
                Request::Pread { fd: Fd(c.u32()?), len: c.u32()?, off: c.u64()? }
            }
            RequestKind::Pwrite => {
                Request::Pwrite { fd: Fd(c.u32()?), data: c.bytes()?, off: c.u64()? }
            }
            RequestKind::Lseek => Request::Lseek { fd: Fd(c.u32()?), pos: get_seek(&mut c)? },
            RequestKind::Fsync => Request::Fsync { fd: Fd(c.u32()?) },
            RequestKind::Fstat => Request::Fstat { fd: Fd(c.u32()?) },
            RequestKind::Ftruncate => Request::Ftruncate { fd: Fd(c.u32()?), len: c.u64()? },
            RequestKind::Fallocate => {
                Request::Fallocate { fd: Fd(c.u32()?), off: c.u64()?, len: c.u64()? }
            }
            RequestKind::Unlink => Request::Unlink { path: c.string()? },
            RequestKind::Mkdir => Request::Mkdir { path: c.string()?, mode: get_mode(&mut c)? },
            RequestKind::Rmdir => Request::Rmdir { path: c.string()? },
            RequestKind::Rename => Request::Rename { old: c.string()?, new: c.string()? },
            RequestKind::Stat => Request::Stat { path: c.string()? },
            RequestKind::Readdir => Request::Readdir { path: c.string()? },
            RequestKind::Symlink => {
                Request::Symlink { target: c.string()?, linkpath: c.string()? }
            }
            RequestKind::Readlink => Request::Readlink { path: c.string()? },
            RequestKind::Link => Request::Link { existing: c.string()?, new: c.string()? },
            RequestKind::Chmod => Request::Chmod { path: c.string()?, perm: c.u16()? },
            RequestKind::SetTimes => {
                Request::SetTimes { path: c.string()?, atime: c.u64()?, mtime: c.u64()? }
            }
            RequestKind::Statfs => Request::Statfs,
            RequestKind::ReadFile => Request::ReadFile { path: c.string()? },
            RequestKind::ReadToVec => Request::ReadToVec { path: c.string()? },
            RequestKind::WriteFile => {
                Request::WriteFile { path: c.string()?, data: c.bytes()? }
            }
            RequestKind::SnapshotTree => Request::SnapshotTree { root: c.string()? },
        };
        c.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Result of one [`Request`], by payload shape rather than per-op (several
/// ops share a shape: every `FsResult<()>` op answers [`Response::Unit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success with no payload (`close`, `fsync`, `unlink`, …).
    Unit,
    /// A descriptor (`open`, `create`).
    Fd(Fd),
    /// A size or offset (`write`, `pwrite`, `lseek`).
    Size(u64),
    /// Raw bytes (`read`, `pread`, `read_file`, `read_to_vec`).
    Data(Vec<u8>),
    /// A string (`name`, `readlink`).
    Str(String),
    /// File metadata (`stat`, `fstat`).
    Stat(Stat),
    /// Device statistics (`statfs`).
    Statfs(FsStats),
    /// Directory listing (`readdir`).
    Entries(Vec<DirEntry>),
    /// Recursive tree rows (`snapshot_tree`).
    Tree(Vec<TreeEntry>),
    /// The op failed with an [`FsError`].
    Err(FsError),
    /// Admission control pushback: the op was *not* executed because the
    /// server's in-flight budget is exhausted; retry after draining
    /// already-pipelined replies. Carries the observed load and the limit.
    Busy {
        /// Ops in flight when the request was refused.
        in_flight: u32,
        /// The server's admission limit.
        limit: u32,
    },
}

impl Response {
    /// Encodes the frame body (tag + payload, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Unit => put_u8(&mut buf, 0),
            Response::Fd(fd) => {
                put_u8(&mut buf, 1);
                put_u32(&mut buf, fd.0);
            }
            Response::Size(n) => {
                put_u8(&mut buf, 2);
                put_u64(&mut buf, *n);
            }
            Response::Data(d) => {
                put_u8(&mut buf, 3);
                put_bytes(&mut buf, d);
            }
            Response::Str(s) => {
                put_u8(&mut buf, 4);
                put_str(&mut buf, s);
            }
            Response::Stat(s) => {
                put_u8(&mut buf, 5);
                put_stat(&mut buf, s);
            }
            Response::Statfs(s) => {
                put_u8(&mut buf, 6);
                put_u64(&mut buf, s.total_bytes);
                put_u64(&mut buf, s.free_bytes);
                put_u32(&mut buf, s.block_size);
            }
            Response::Entries(es) => {
                put_u8(&mut buf, 7);
                put_u32(&mut buf, es.len() as u32);
                for e in es {
                    put_str(&mut buf, &e.name);
                    put_ftype(&mut buf, e.ftype);
                    put_u64(&mut buf, e.ino);
                }
            }
            Response::Tree(rows) => {
                put_u8(&mut buf, 8);
                put_u32(&mut buf, rows.len() as u32);
                for (path, ftype, size) in rows {
                    put_str(&mut buf, path);
                    put_ftype(&mut buf, *ftype);
                    put_u64(&mut buf, *size);
                }
            }
            Response::Err(e) => {
                put_u8(&mut buf, 9);
                put_err(&mut buf, e);
            }
            Response::Busy { in_flight, limit } => {
                put_u8(&mut buf, 10);
                put_u32(&mut buf, *in_flight);
                put_u32(&mut buf, *limit);
            }
        }
        buf
    }

    /// Decodes a frame body produced by [`Response::encode`].
    pub fn decode(body: &[u8]) -> Result<Response, DecodeError> {
        let mut c = Cursor::new(body);
        let resp = match c.u8()? {
            0 => Response::Unit,
            1 => Response::Fd(Fd(c.u32()?)),
            2 => Response::Size(c.u64()?),
            3 => Response::Data(c.bytes()?),
            4 => Response::Str(c.string()?),
            5 => Response::Stat(get_stat(&mut c)?),
            6 => Response::Statfs(FsStats {
                total_bytes: c.u64()?,
                free_bytes: c.u64()?,
                block_size: c.u32()?,
            }),
            7 => {
                let n = c.u32()? as usize;
                let mut es = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    es.push(DirEntry {
                        name: c.string()?,
                        ftype: get_ftype(&mut c)?,
                        ino: c.u64()?,
                    });
                }
                Response::Entries(es)
            }
            8 => {
                let n = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push((c.string()?, get_ftype(&mut c)?, c.u64()?));
                }
                Response::Tree(rows)
            }
            9 => Response::Err(get_err(&mut c)?),
            10 => Response::Busy { in_flight: c.u32()?, limit: c.u32()? },
            t => return Err(DecodeError::BadTag("Response", t)),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Wraps a frame body with its little-endian `u32` length prefix.
pub fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(body);
    out
}

/// Incremental deframer: given the unconsumed byte stream, returns
/// `Ok(Some((consumed, body)))` when a complete frame is buffered,
/// `Ok(None)` when more bytes are needed, or the protocol error for an
/// oversized length prefix.
pub fn split_frame(buf: &[u8]) -> Result<Option<(usize, &[u8])>, DecodeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(DecodeError::FrameTooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((4 + len, &buf[4..4 + len])))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: RequestKind) -> Request {
        let mode = FileMode::file(0o640);
        match kind {
            RequestKind::Name => Request::Name,
            RequestKind::Open => {
                Request::Open { path: "/a/b".into(), flags: OpenFlags::RDWR, mode }
            }
            RequestKind::Create => Request::Create { path: "/a/c".into(), mode },
            RequestKind::Close => Request::Close { fd: Fd(7) },
            RequestKind::Read => Request::Read { fd: Fd(7), len: 4096 },
            RequestKind::Write => Request::Write { fd: Fd(7), data: vec![1, 2, 3] },
            RequestKind::Pread => Request::Pread { fd: Fd(7), len: 512, off: 9 },
            RequestKind::Pwrite => Request::Pwrite { fd: Fd(7), data: vec![9; 17], off: 33 },
            RequestKind::Lseek => Request::Lseek { fd: Fd(7), pos: SeekFrom::End(-3) },
            RequestKind::Fsync => Request::Fsync { fd: Fd(7) },
            RequestKind::Fstat => Request::Fstat { fd: Fd(7) },
            RequestKind::Ftruncate => Request::Ftruncate { fd: Fd(7), len: 100 },
            RequestKind::Fallocate => Request::Fallocate { fd: Fd(7), off: 4096, len: 8192 },
            RequestKind::Unlink => Request::Unlink { path: "/a/b".into() },
            RequestKind::Mkdir => Request::Mkdir { path: "/d".into(), mode: FileMode::dir(0o755) },
            RequestKind::Rmdir => Request::Rmdir { path: "/d".into() },
            RequestKind::Rename => Request::Rename { old: "/a".into(), new: "/b".into() },
            RequestKind::Stat => Request::Stat { path: "/a".into() },
            RequestKind::Readdir => Request::Readdir { path: "/".into() },
            RequestKind::Symlink => {
                Request::Symlink { target: "/a".into(), linkpath: "/l".into() }
            }
            RequestKind::Readlink => Request::Readlink { path: "/l".into() },
            RequestKind::Link => Request::Link { existing: "/a".into(), new: "/h".into() },
            RequestKind::Chmod => Request::Chmod { path: "/a".into(), perm: 0o600 },
            RequestKind::SetTimes => {
                Request::SetTimes { path: "/a".into(), atime: 1, mtime: 2 }
            }
            RequestKind::Statfs => Request::Statfs,
            RequestKind::ReadFile => Request::ReadFile { path: "/a".into() },
            RequestKind::ReadToVec => Request::ReadToVec { path: "/a".into() },
            RequestKind::WriteFile => {
                Request::WriteFile { path: "/a".into(), data: b"hello".to_vec() }
            }
            RequestKind::SnapshotTree => Request::SnapshotTree { root: "/".into() },
        }
    }

    #[test]
    fn every_request_round_trips() {
        for kind in RequestKind::ALL {
            let req = sample(kind);
            assert_eq!(req.kind(), kind);
            let body = req.encode();
            let back = Request::decode(&body).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(back, req, "{kind:?} round-trips");
        }
    }

    #[test]
    fn responses_round_trip() {
        let stat = Stat {
            ino: 42,
            mode: FileMode::dir(0o755),
            uid: 1,
            gid: 2,
            size: 0,
            nlink: 2,
            atime: 3,
            mtime: 4,
            ctime: 5,
        };
        let all = [
            Response::Unit,
            Response::Fd(Fd(9)),
            Response::Size(1 << 40),
            Response::Data(vec![0, 255, 7]),
            Response::Str("simurgh".into()),
            Response::Stat(stat),
            Response::Statfs(FsStats { total_bytes: 10, free_bytes: 4, block_size: 4096 }),
            Response::Entries(vec![DirEntry {
                name: "x".into(),
                ftype: FileType::Symlink,
                ino: 3,
            }]),
            Response::Tree(vec![("/a".into(), FileType::Regular, 11)]),
            Response::Err(FsError::Corrupt("bad line")),
            Response::Busy { in_flight: 128, limit: 128 },
        ];
        for r in all {
            let back = Response::decode(&r.encode()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn framing_is_incremental() {
        let body = Request::Statfs.encode();
        let framed = frame(&body);
        for cut in 0..framed.len() {
            assert_eq!(split_frame(&framed[..cut]).unwrap(), None, "partial at {cut}");
        }
        let (consumed, got) = split_frame(&framed).unwrap().unwrap();
        assert_eq!(consumed, framed.len());
        assert_eq!(got, &body[..]);
        // Oversized length prefix is refused, not buffered.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(matches!(split_frame(&huge), Err(DecodeError::FrameTooLarge(_))));
    }

    #[test]
    fn handshake_round_trips_and_rejects_garbage() {
        let h = Hello { version: PROTOCOL_VERSION, creds: Credentials::user(10, 20) };
        assert_eq!(Hello::decode(&h.encode()).unwrap(), h);
        let ok = HelloOk { version: PROTOCOL_VERSION, conn_id: 77 };
        assert_eq!(HelloOk::decode(&ok.encode()).unwrap(), ok);
        assert_eq!(Hello::decode(&[0; 14]), Err(DecodeError::BadHandshake));
    }

    #[test]
    fn unknown_error_tag_decodes_by_errno() {
        // A future FsError variant arrives as the catch-all tag: errno +
        // rendering. The decode maps it to the closest known variant.
        let mut buf = vec![255u8];
        buf.extend_from_slice(&28u32.to_le_bytes());
        let msg = b"EFUTURE (something new)";
        buf.extend_from_slice(&(msg.len() as u32).to_le_bytes());
        buf.extend_from_slice(msg);
        let mut c = Cursor::new(&buf);
        let e = get_err(&mut c).unwrap();
        c.finish().unwrap();
        assert_eq!(e.errno(), 28);
    }
}
