//! Path handling shared by all implementations.
//!
//! Paths are absolute, `/`-separated byte strings. `.` and `..` are
//! resolved lexically (as the VFS does during the walk); empty components
//! are ignored. Component names are validated against [`crate::NAME_MAX`].

use crate::error::{FsError, FsResult};
use crate::NAME_MAX;

/// Splits an absolute path into validated components, resolving `.`/`..`
/// lexically. Returns `Err(Invalid)` for relative paths and
/// `Err(NameTooLong)` for oversized components.
pub fn components(path: &str) -> FsResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(FsError::Invalid);
    }
    let mut out: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            name => {
                if name.len() > NAME_MAX {
                    return Err(FsError::NameTooLong);
                }
                out.push(name);
            }
        }
    }
    Ok(out)
}

/// Splits a path into `(parent components, final name)`. The root itself
/// has no final name and yields `Err(Invalid)`.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut comps = components(path)?;
    let name = comps.pop().ok_or(FsError::Invalid)?;
    Ok((comps, name))
}

/// Validates a single file name (no separators, not empty, not too long,
/// not `.`/`..`).
pub fn validate_name(name: &str) -> FsResult<()> {
    if name.is_empty() || name == "." || name == ".." || name.contains('/') {
        return Err(FsError::Invalid);
    }
    if name.len() > NAME_MAX {
        return Err(FsError::NameTooLong);
    }
    Ok(())
}

/// Joins a parent path and a name into a normalized absolute path.
pub fn join(parent: &str, name: &str) -> String {
    if parent.ends_with('/') {
        format!("{parent}{name}")
    } else {
        format!("{parent}/{name}")
    }
}

/// True if `descendant` is lexically inside `ancestor` (used to refuse
/// renaming a directory into its own subtree).
pub fn is_descendant(ancestor: &[&str], descendant: &[&str]) -> bool {
    descendant.len() > ancestor.len() && descendant[..ancestor.len()] == *ancestor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_normalizes() {
        assert_eq!(components("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(components("/").unwrap(), Vec::<&str>::new());
        assert_eq!(components("//a//b/").unwrap(), vec!["a", "b"]);
        assert_eq!(components("/a/./b").unwrap(), vec!["a", "b"]);
        assert_eq!(components("/a/../b").unwrap(), vec!["b"]);
        assert_eq!(components("/../a").unwrap(), vec!["a"]);
    }

    #[test]
    fn rejects_relative_and_long() {
        assert_eq!(components("a/b"), Err(FsError::Invalid));
        assert_eq!(components(""), Err(FsError::Invalid));
        let long = format!("/{}", "x".repeat(NAME_MAX + 1));
        assert_eq!(components(&long), Err(FsError::NameTooLong));
    }

    #[test]
    fn split_parent_works() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert_eq!(split_parent("/"), Err(FsError::Invalid));
        let (parent, name) = split_parent("/top").unwrap();
        assert!(parent.is_empty());
        assert_eq!(name, "top");
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("file.txt").is_ok());
        assert_eq!(validate_name(""), Err(FsError::Invalid));
        assert_eq!(validate_name("."), Err(FsError::Invalid));
        assert_eq!(validate_name(".."), Err(FsError::Invalid));
        assert_eq!(validate_name("a/b"), Err(FsError::Invalid));
        assert_eq!(validate_name(&"x".repeat(NAME_MAX + 1)), Err(FsError::NameTooLong));
    }

    #[test]
    fn join_handles_root() {
        assert_eq!(join("/", "a"), "/a");
        assert_eq!(join("/a", "b"), "/a/b");
    }

    #[test]
    fn descendant_detection() {
        let a = ["a", "b"];
        let d = ["a", "b", "c"];
        assert!(is_descendant(&a, &d));
        assert!(!is_descendant(&d, &a));
        assert!(!is_descendant(&a, &a));
        assert!(!is_descendant(&["a", "x"], &d));
    }
}
