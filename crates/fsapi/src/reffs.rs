//! A deliberately simple in-memory reference file system.
//!
//! `RefFs` is the oracle for differential and property tests: it implements
//! the same [`FileSystem`] trait as Simurgh and the baselines with the most
//! straightforward data structures available (one big lock, `BTreeMap`
//! directories, `Vec<u8>` files), so its behaviour is easy to audit. Any
//! divergence between an evaluated file system and `RefFs` on the same
//! operation sequence is a bug in the evaluated system.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{FsError, FsResult};
use crate::fs::{DirEntry, FileSystem, OpenTable, ProcCtx};
use crate::path;
use crate::types::{access, Fd, FileMode, FileType, OpenFlags, SeekFrom, Stat};

const SYMLINK_HOPS: usize = 16;

#[derive(Debug, Clone)]
enum NodeKind {
    File { data: Vec<u8> },
    Dir { entries: BTreeMap<String, u64> },
    Symlink { target: String },
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    perm: u16,
    uid: u32,
    gid: u32,
    nlink: u32,
    atime: u64,
    mtime: u64,
    ctime: u64,
}

impl Node {
    fn ftype(&self) -> FileType {
        match self.kind {
            NodeKind::File { .. } => FileType::Regular,
            NodeKind::Dir { .. } => FileType::Directory,
            NodeKind::Symlink { .. } => FileType::Symlink,
        }
    }

    fn size(&self) -> u64 {
        match &self.kind {
            NodeKind::File { data } => data.len() as u64,
            NodeKind::Dir { entries } => entries.len() as u64,
            NodeKind::Symlink { target } => target.len() as u64,
        }
    }
}

struct Tree {
    nodes: HashMap<u64, Node>,
    next_id: u64,
}

#[derive(Debug, Clone, Copy)]
struct RefOpen {
    node: u64,
    pos: u64,
    flags: OpenFlags,
}

/// The reference file system.
pub struct RefFs {
    tree: Mutex<Tree>,
    opens: OpenTable<RefOpen>,
    clock: AtomicU64,
}

const ROOT_ID: u64 = 1;

impl Default for RefFs {
    fn default() -> Self {
        Self::new()
    }
}

impl RefFs {
    /// An empty file system with a root directory owned by root.
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(
            ROOT_ID,
            Node {
                kind: NodeKind::Dir { entries: BTreeMap::new() },
                perm: 0o755,
                uid: 0,
                gid: 0,
                nlink: 2,
                atime: 0,
                mtime: 0,
                ctime: 0,
            },
        );
        RefFs { tree: Mutex::new(Tree { nodes, next_id: 2 }), opens: OpenTable::new(), clock: AtomicU64::new(1) }
    }

    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Resolves `path` to a node id. When `follow_final` is false the final
    /// component is not dereferenced if it is a symlink.
    fn resolve(&self, tree: &Tree, ctx: &ProcCtx, p: &str, follow_final: bool) -> FsResult<u64> {
        let comps = path::components(p)?;
        self.walk(tree, ctx, ROOT_ID, &comps, follow_final, 0)
    }

    fn walk(
        &self,
        tree: &Tree,
        ctx: &ProcCtx,
        start: u64,
        comps: &[&str],
        follow_final: bool,
        hops: usize,
    ) -> FsResult<u64> {
        if hops > SYMLINK_HOPS {
            return Err(FsError::TooManyLinks);
        }
        let mut cur = start;
        for (i, comp) in comps.iter().enumerate() {
            let node = tree.nodes.get(&cur).ok_or(FsError::Corrupt("dangling node"))?;
            let NodeKind::Dir { entries } = &node.kind else {
                return Err(FsError::NotDir);
            };
            if !ctx.creds.may(access::X, node.perm, node.uid, node.gid) {
                return Err(FsError::Access);
            }
            let &next = entries.get(*comp).ok_or(FsError::NotFound)?;
            let is_final = i + 1 == comps.len();
            let next_node = tree.nodes.get(&next).ok_or(FsError::Corrupt("dangling entry"))?;
            if let NodeKind::Symlink { target } = &next_node.kind {
                if !is_final || follow_final {
                    let tcomps = path::components(target)?;
                    let resolved = self.walk(tree, ctx, ROOT_ID, &tcomps, true, hops + 1)?;
                    if is_final {
                        return Ok(resolved);
                    }
                    cur = resolved;
                    continue;
                }
            }
            cur = next;
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `p` and returns `(dir_id, name)`.
    fn resolve_parent<'p>(&self, tree: &Tree, ctx: &ProcCtx, p: &'p str) -> FsResult<(u64, &'p str)> {
        let (parent, name) = path::split_parent(p)?;
        let dir = self.walk(tree, ctx, ROOT_ID, &parent, true, 0)?;
        Ok((dir, name))
    }

    fn check_dir_write(&self, tree: &Tree, ctx: &ProcCtx, dir: u64) -> FsResult<()> {
        let node = &tree.nodes[&dir];
        if !ctx.creds.may(access::W | access::X, node.perm, node.uid, node.gid) {
            return Err(FsError::Access);
        }
        Ok(())
    }

    fn stat_node(&self, tree: &Tree, id: u64) -> Stat {
        let n = &tree.nodes[&id];
        Stat {
            ino: id,
            mode: FileMode { ftype: n.ftype(), perm: n.perm },
            uid: n.uid,
            gid: n.gid,
            size: n.size(),
            nlink: n.nlink,
            atime: n.atime,
            mtime: n.mtime,
            ctime: n.ctime,
        }
    }

    fn do_pwrite(&self, tree: &mut Tree, node: u64, data: &[u8], off: u64) -> FsResult<usize> {
        let n = tree.nodes.get_mut(&node).ok_or(FsError::BadFd)?;
        let NodeKind::File { data: file } = &mut n.kind else {
            return Err(FsError::IsDir);
        };
        let end = off as usize + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[off as usize..end].copy_from_slice(data);
        n.mtime = self.clock.load(Ordering::Relaxed);
        Ok(data.len())
    }
}

impl FileSystem for RefFs {
    fn name(&self) -> &str {
        "reffs"
    }

    fn open(&self, ctx: &ProcCtx, p: &str, flags: OpenFlags, mode: FileMode) -> FsResult<Fd> {
        let mut tree = self.tree.lock();
        let node = match self.resolve(&tree, ctx, p, true) {
            Ok(id) => {
                if flags.excl && flags.create {
                    return Err(FsError::Exists);
                }
                let n = &tree.nodes[&id];
                match n.kind {
                    NodeKind::Dir { .. } if flags.write => return Err(FsError::IsDir),
                    _ => {}
                }
                let mut want = 0;
                if flags.read {
                    want |= access::R;
                }
                if flags.write {
                    want |= access::W;
                }
                if want != 0 && !ctx.creds.may(want, n.perm, n.uid, n.gid) {
                    return Err(FsError::Access);
                }
                if flags.truncate && flags.write {
                    if let Some(Node { kind: NodeKind::File { data }, .. }) = tree.nodes.get_mut(&id) {
                        data.clear();
                    }
                }
                id
            }
            Err(FsError::NotFound) if flags.create => {
                let (dir, name) = self.resolve_parent(&tree, ctx, p)?;
                path::validate_name(name)?;
                self.check_dir_write(&tree, ctx, dir)?;
                let now = self.now();
                let id = tree.next_id;
                tree.next_id += 1;
                tree.nodes.insert(
                    id,
                    Node {
                        kind: NodeKind::File { data: Vec::new() },
                        perm: mode.perm,
                        uid: ctx.creds.uid,
                        gid: ctx.creds.gid,
                        nlink: 1,
                        atime: now,
                        mtime: now,
                        ctime: now,
                    },
                );
                let Some(NodeKind::Dir { entries }) = tree.nodes.get_mut(&dir).map(|n| &mut n.kind)
                else {
                    return Err(FsError::NotDir);
                };
                entries.insert(name.to_owned(), id);
                id
            }
            Err(e) => return Err(e),
        };
        let pos = if flags.append { tree.nodes[&node].size() } else { 0 };
        Ok(self.opens.insert(ctx.pid, RefOpen { node, pos, flags }))
    }

    fn close(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<()> {
        self.opens.remove(ctx.pid, fd).map(|_| ())
    }

    fn read(&self, ctx: &ProcCtx, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let open = self.opens.with(ctx.pid, fd, |o| *o)?;
        let n = self.pread(ctx, fd, buf, open.pos)?;
        self.opens.with_mut(ctx.pid, fd, |o| o.pos += n as u64)?;
        Ok(n)
    }

    fn write(&self, ctx: &ProcCtx, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let open = self.opens.with(ctx.pid, fd, |o| *o)?;
        if !open.flags.write {
            return Err(FsError::BadFd);
        }
        let mut tree = self.tree.lock();
        let off = if open.flags.append { tree.nodes[&open.node].size() } else { open.pos };
        let n = self.do_pwrite(&mut tree, open.node, data, off)?;
        drop(tree);
        self.opens.with_mut(ctx.pid, fd, |o| o.pos = off + n as u64)?;
        Ok(n)
    }

    fn pread(&self, ctx: &ProcCtx, fd: Fd, buf: &mut [u8], off: u64) -> FsResult<usize> {
        let open = self.opens.with(ctx.pid, fd, |o| *o)?;
        if !open.flags.read {
            return Err(FsError::BadFd);
        }
        let tree = self.tree.lock();
        let n = tree.nodes.get(&open.node).ok_or(FsError::BadFd)?;
        let NodeKind::File { data } = &n.kind else {
            return Err(FsError::IsDir);
        };
        if off as usize >= data.len() {
            return Ok(0);
        }
        let n = (data.len() - off as usize).min(buf.len());
        buf[..n].copy_from_slice(&data[off as usize..off as usize + n]);
        Ok(n)
    }

    fn pwrite(&self, ctx: &ProcCtx, fd: Fd, data: &[u8], off: u64) -> FsResult<usize> {
        let open = self.opens.with(ctx.pid, fd, |o| *o)?;
        if !open.flags.write {
            return Err(FsError::BadFd);
        }
        let mut tree = self.tree.lock();
        self.do_pwrite(&mut tree, open.node, data, off)
    }

    fn lseek(&self, ctx: &ProcCtx, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        let size = {
            let open = self.opens.with(ctx.pid, fd, |o| *o)?;
            let tree = self.tree.lock();
            tree.nodes.get(&open.node).map(|n| n.size()).ok_or(FsError::BadFd)?
        };
        self.opens.with_mut(ctx.pid, fd, |o| {
            let new = match pos {
                SeekFrom::Start(s) => s as i128,
                SeekFrom::Current(d) => o.pos as i128 + d as i128,
                SeekFrom::End(d) => size as i128 + d as i128,
            };
            if new < 0 {
                return Err(FsError::Invalid);
            }
            o.pos = new as u64;
            Ok(o.pos)
        })?
    }

    fn fsync(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<()> {
        self.opens.with(ctx.pid, fd, |_| ())
    }

    fn fstat(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<Stat> {
        let open = self.opens.with(ctx.pid, fd, |o| *o)?;
        let tree = self.tree.lock();
        if !tree.nodes.contains_key(&open.node) {
            return Err(FsError::BadFd);
        }
        Ok(self.stat_node(&tree, open.node))
    }

    fn ftruncate(&self, ctx: &ProcCtx, fd: Fd, len: u64) -> FsResult<()> {
        let open = self.opens.with(ctx.pid, fd, |o| *o)?;
        if !open.flags.write {
            return Err(FsError::BadFd);
        }
        let mut tree = self.tree.lock();
        let n = tree.nodes.get_mut(&open.node).ok_or(FsError::BadFd)?;
        let NodeKind::File { data } = &mut n.kind else {
            return Err(FsError::IsDir);
        };
        data.resize(len as usize, 0);
        Ok(())
    }

    fn fallocate(&self, ctx: &ProcCtx, fd: Fd, off: u64, len: u64) -> FsResult<()> {
        let open = self.opens.with(ctx.pid, fd, |o| *o)?;
        if !open.flags.write {
            return Err(FsError::BadFd);
        }
        let mut tree = self.tree.lock();
        let n = tree.nodes.get_mut(&open.node).ok_or(FsError::BadFd)?;
        let NodeKind::File { data } = &mut n.kind else {
            return Err(FsError::IsDir);
        };
        let end = (off + len) as usize;
        if data.len() < end {
            data.resize(end, 0);
        }
        Ok(())
    }

    fn unlink(&self, ctx: &ProcCtx, p: &str) -> FsResult<()> {
        let mut tree = self.tree.lock();
        let (dir, name) = self.resolve_parent(&tree, ctx, p)?;
        self.check_dir_write(&tree, ctx, dir)?;
        let Some(NodeKind::Dir { entries }) = tree.nodes.get(&dir).map(|n| &n.kind) else {
            return Err(FsError::NotDir);
        };
        let &id = entries.get(name).ok_or(FsError::NotFound)?;
        if matches!(tree.nodes[&id].kind, NodeKind::Dir { .. }) {
            return Err(FsError::IsDir);
        }
        if let Some(NodeKind::Dir { entries }) = tree.nodes.get_mut(&dir).map(|n| &mut n.kind) {
            entries.remove(name);
        }
        let nlink = {
            let n = tree.nodes.get_mut(&id).unwrap();
            n.nlink -= 1;
            n.nlink
        };
        if nlink == 0 {
            tree.nodes.remove(&id);
        }
        Ok(())
    }

    fn mkdir(&self, ctx: &ProcCtx, p: &str, mode: FileMode) -> FsResult<()> {
        let mut tree = self.tree.lock();
        let (dir, name) = self.resolve_parent(&tree, ctx, p)?;
        path::validate_name(name)?;
        self.check_dir_write(&tree, ctx, dir)?;
        let Some(NodeKind::Dir { entries }) = tree.nodes.get(&dir).map(|n| &n.kind) else {
            return Err(FsError::NotDir);
        };
        if entries.contains_key(name) {
            return Err(FsError::Exists);
        }
        let now = self.now();
        let id = tree.next_id;
        tree.next_id += 1;
        tree.nodes.insert(
            id,
            Node {
                kind: NodeKind::Dir { entries: BTreeMap::new() },
                perm: mode.perm,
                uid: ctx.creds.uid,
                gid: ctx.creds.gid,
                nlink: 2,
                atime: now,
                mtime: now,
                ctime: now,
            },
        );
        if let Some(NodeKind::Dir { entries }) = tree.nodes.get_mut(&dir).map(|n| &mut n.kind) {
            entries.insert(name.to_owned(), id);
        }
        Ok(())
    }

    fn rmdir(&self, ctx: &ProcCtx, p: &str) -> FsResult<()> {
        let mut tree = self.tree.lock();
        let (dir, name) = self.resolve_parent(&tree, ctx, p)?;
        self.check_dir_write(&tree, ctx, dir)?;
        let Some(NodeKind::Dir { entries }) = tree.nodes.get(&dir).map(|n| &n.kind) else {
            return Err(FsError::NotDir);
        };
        let &id = entries.get(name).ok_or(FsError::NotFound)?;
        match &tree.nodes[&id].kind {
            NodeKind::Dir { entries } if entries.is_empty() => {}
            NodeKind::Dir { .. } => return Err(FsError::NotEmpty),
            _ => return Err(FsError::NotDir),
        }
        if let Some(NodeKind::Dir { entries }) = tree.nodes.get_mut(&dir).map(|n| &mut n.kind) {
            entries.remove(name);
        }
        tree.nodes.remove(&id);
        Ok(())
    }

    fn rename(&self, ctx: &ProcCtx, old: &str, new: &str) -> FsResult<()> {
        let mut tree = self.tree.lock();
        let (odir, oname) = self.resolve_parent(&tree, ctx, old)?;
        let (ndir, nname) = self.resolve_parent(&tree, ctx, new)?;
        path::validate_name(nname)?;
        self.check_dir_write(&tree, ctx, odir)?;
        self.check_dir_write(&tree, ctx, ndir)?;
        let Some(NodeKind::Dir { entries }) = tree.nodes.get(&odir).map(|n| &n.kind) else {
            return Err(FsError::NotDir);
        };
        let &id = entries.get(oname).ok_or(FsError::NotFound)?;
        // Refuse to move a directory into its own subtree.
        if matches!(tree.nodes[&id].kind, NodeKind::Dir { .. }) {
            let oc = path::components(old)?;
            let nc = path::components(new)?;
            if path::is_descendant(&oc, &nc) {
                return Err(FsError::Invalid);
            }
        }
        // Replace target if present (files only, empty dirs only).
        let replaced = {
            let Some(NodeKind::Dir { entries }) = tree.nodes.get(&ndir).map(|n| &n.kind) else {
                return Err(FsError::NotDir);
            };
            entries.get(nname).copied()
        };
        if let Some(rid) = replaced {
            if rid == id {
                return Ok(());
            }
            let moving_dir = matches!(tree.nodes[&id].kind, NodeKind::Dir { .. });
            let target_dir = matches!(tree.nodes[&rid].kind, NodeKind::Dir { .. });
            match (moving_dir, target_dir) {
                (true, false) => return Err(FsError::NotDir),
                (false, true) => return Err(FsError::IsDir),
                _ => {}
            }
            match &tree.nodes[&rid].kind {
                NodeKind::Dir { entries } if !entries.is_empty() => return Err(FsError::NotEmpty),
                _ => {}
            }
            let gone = {
                let n = tree.nodes.get_mut(&rid).unwrap();
                n.nlink = n.nlink.saturating_sub(1);
                n.nlink == 0 || matches!(n.kind, NodeKind::Dir { .. })
            };
            if gone {
                tree.nodes.remove(&rid);
            }
        }
        if let Some(NodeKind::Dir { entries }) = tree.nodes.get_mut(&odir).map(|n| &mut n.kind) {
            entries.remove(oname);
        }
        if let Some(NodeKind::Dir { entries }) = tree.nodes.get_mut(&ndir).map(|n| &mut n.kind) {
            entries.insert(nname.to_owned(), id);
        }
        Ok(())
    }

    fn stat(&self, ctx: &ProcCtx, p: &str) -> FsResult<Stat> {
        let tree = self.tree.lock();
        let id = self.resolve(&tree, ctx, p, true)?;
        Ok(self.stat_node(&tree, id))
    }

    fn readdir(&self, ctx: &ProcCtx, p: &str) -> FsResult<Vec<DirEntry>> {
        let tree = self.tree.lock();
        let id = self.resolve(&tree, ctx, p, true)?;
        let n = &tree.nodes[&id];
        let NodeKind::Dir { entries } = &n.kind else {
            return Err(FsError::NotDir);
        };
        if !ctx.creds.may(access::R, n.perm, n.uid, n.gid) {
            return Err(FsError::Access);
        }
        Ok(entries
            .iter()
            .map(|(name, &eid)| DirEntry {
                name: name.clone(),
                ftype: tree.nodes[&eid].ftype(),
                ino: eid,
            })
            .collect())
    }

    fn symlink(&self, ctx: &ProcCtx, target: &str, linkpath: &str) -> FsResult<()> {
        let mut tree = self.tree.lock();
        let (dir, name) = self.resolve_parent(&tree, ctx, linkpath)?;
        path::validate_name(name)?;
        self.check_dir_write(&tree, ctx, dir)?;
        let Some(NodeKind::Dir { entries }) = tree.nodes.get(&dir).map(|n| &n.kind) else {
            return Err(FsError::NotDir);
        };
        if entries.contains_key(name) {
            return Err(FsError::Exists);
        }
        let now = self.now();
        let id = tree.next_id;
        tree.next_id += 1;
        tree.nodes.insert(
            id,
            Node {
                kind: NodeKind::Symlink { target: target.to_owned() },
                perm: 0o777,
                uid: ctx.creds.uid,
                gid: ctx.creds.gid,
                nlink: 1,
                atime: now,
                mtime: now,
                ctime: now,
            },
        );
        if let Some(NodeKind::Dir { entries }) = tree.nodes.get_mut(&dir).map(|n| &mut n.kind) {
            entries.insert(name.to_owned(), id);
        }
        Ok(())
    }

    fn readlink(&self, ctx: &ProcCtx, p: &str) -> FsResult<String> {
        let tree = self.tree.lock();
        let id = self.resolve(&tree, ctx, p, false)?;
        match &tree.nodes[&id].kind {
            NodeKind::Symlink { target } => Ok(target.clone()),
            _ => Err(FsError::Invalid),
        }
    }

    fn link(&self, ctx: &ProcCtx, existing: &str, new: &str) -> FsResult<()> {
        let mut tree = self.tree.lock();
        let id = self.resolve(&tree, ctx, existing, false)?;
        if matches!(tree.nodes[&id].kind, NodeKind::Dir { .. }) {
            return Err(FsError::IsDir);
        }
        let (dir, name) = self.resolve_parent(&tree, ctx, new)?;
        path::validate_name(name)?;
        self.check_dir_write(&tree, ctx, dir)?;
        let Some(NodeKind::Dir { entries }) = tree.nodes.get(&dir).map(|n| &n.kind) else {
            return Err(FsError::NotDir);
        };
        if entries.contains_key(name) {
            return Err(FsError::Exists);
        }
        tree.nodes.get_mut(&id).unwrap().nlink += 1;
        if let Some(NodeKind::Dir { entries }) = tree.nodes.get_mut(&dir).map(|n| &mut n.kind) {
            entries.insert(name.to_owned(), id);
        }
        Ok(())
    }

    fn chmod(&self, ctx: &ProcCtx, p: &str, perm: u16) -> FsResult<()> {
        let mut tree = self.tree.lock();
        let id = self.resolve(&tree, ctx, p, true)?;
        let n = tree.nodes.get_mut(&id).unwrap();
        if ctx.creds.uid != 0 && ctx.creds.uid != n.uid {
            return Err(FsError::Access);
        }
        n.perm = perm & 0o777;
        Ok(())
    }

    fn set_times(&self, ctx: &ProcCtx, p: &str, atime: u64, mtime: u64) -> FsResult<()> {
        let mut tree = self.tree.lock();
        let id = self.resolve(&tree, ctx, p, true)?;
        let n = tree.nodes.get_mut(&id).unwrap();
        if ctx.creds.uid != 0 && ctx.creds.uid != n.uid {
            return Err(FsError::Access);
        }
        n.atime = atime;
        n.mtime = mtime;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Credentials;

    fn fs() -> (RefFs, ProcCtx) {
        (RefFs::new(), ProcCtx::root(1))
    }

    #[test]
    fn create_write_read_roundtrip() {
        let (fs, ctx) = fs();
        fs.write_file(&ctx, "/hello.txt", b"hello world").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/hello.txt").unwrap(), b"hello world");
        let st = fs.stat(&ctx, "/hello.txt").unwrap();
        assert_eq!(st.size, 11);
        assert!(st.is_file());
    }

    #[test]
    fn excl_create_conflicts() {
        let (fs, ctx) = fs();
        fs.create(&ctx, "/a", FileMode::default()).unwrap();
        assert_eq!(fs.create(&ctx, "/a", FileMode::default()), Err(FsError::Exists));
    }

    #[test]
    fn nested_dirs_and_readdir() {
        let (fs, ctx) = fs();
        fs.mkdir(&ctx, "/d", FileMode::dir(0o755)).unwrap();
        fs.mkdir(&ctx, "/d/e", FileMode::dir(0o755)).unwrap();
        fs.write_file(&ctx, "/d/e/f", b"x").unwrap();
        let names: Vec<_> = fs.readdir(&ctx, "/d").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e"]);
        assert_eq!(fs.readdir(&ctx, "/d/e").unwrap().len(), 1);
        assert_eq!(fs.rmdir(&ctx, "/d"), Err(FsError::NotEmpty));
        fs.unlink(&ctx, "/d/e/f").unwrap();
        fs.rmdir(&ctx, "/d/e").unwrap();
        fs.rmdir(&ctx, "/d").unwrap();
        assert_eq!(fs.stat(&ctx, "/d"), Err(FsError::NotFound));
    }

    #[test]
    fn append_mode_appends() {
        let (fs, ctx) = fs();
        let fd = fs.open(&ctx, "/log", OpenFlags::APPEND, FileMode::default()).unwrap();
        fs.write(&ctx, fd, b"aa").unwrap();
        fs.write(&ctx, fd, b"bb").unwrap();
        fs.close(&ctx, fd).unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/log").unwrap(), b"aabb");
    }

    #[test]
    fn seek_and_sparse_write() {
        let (fs, ctx) = fs();
        let fd = fs.open(&ctx, "/s", OpenFlags::CREATE, FileMode::default()).unwrap();
        fs.pwrite(&ctx, fd, b"z", 10).unwrap();
        assert_eq!(fs.fstat(&ctx, fd).unwrap().size, 11);
        let pos = fs.lseek(&ctx, fd, SeekFrom::End(-1)).unwrap();
        assert_eq!(pos, 10);
        assert_eq!(fs.lseek(&ctx, fd, SeekFrom::Current(-5)).unwrap(), 5);
        assert_eq!(fs.lseek(&ctx, fd, SeekFrom::Current(-50)), Err(FsError::Invalid));
        fs.close(&ctx, fd).unwrap();
    }

    #[test]
    fn rename_moves_and_replaces() {
        let (fs, ctx) = fs();
        fs.mkdir(&ctx, "/a", FileMode::dir(0o755)).unwrap();
        fs.mkdir(&ctx, "/b", FileMode::dir(0o755)).unwrap();
        fs.write_file(&ctx, "/a/x", b"1").unwrap();
        fs.write_file(&ctx, "/b/y", b"2").unwrap();
        fs.rename(&ctx, "/a/x", "/b/y").unwrap();
        assert_eq!(fs.stat(&ctx, "/a/x"), Err(FsError::NotFound));
        assert_eq!(fs.read_to_vec(&ctx, "/b/y").unwrap(), b"1");
    }

    #[test]
    fn rename_dir_into_itself_rejected() {
        let (fs, ctx) = fs();
        fs.mkdir(&ctx, "/a", FileMode::dir(0o755)).unwrap();
        assert_eq!(fs.rename(&ctx, "/a", "/a/sub"), Err(FsError::Invalid));
    }

    #[test]
    fn hard_links_share_data() {
        let (fs, ctx) = fs();
        fs.write_file(&ctx, "/orig", b"data").unwrap();
        fs.link(&ctx, "/orig", "/alias").unwrap();
        assert_eq!(fs.stat(&ctx, "/orig").unwrap().nlink, 2);
        assert_eq!(fs.stat(&ctx, "/orig").unwrap().ino, fs.stat(&ctx, "/alias").unwrap().ino);
        fs.unlink(&ctx, "/orig").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/alias").unwrap(), b"data");
        assert_eq!(fs.stat(&ctx, "/alias").unwrap().nlink, 1);
    }

    #[test]
    fn symlinks_resolve_transitively() {
        let (fs, ctx) = fs();
        fs.mkdir(&ctx, "/real", FileMode::dir(0o755)).unwrap();
        fs.write_file(&ctx, "/real/file", b"deep").unwrap();
        fs.symlink(&ctx, "/real", "/alias").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/alias/file").unwrap(), b"deep");
        assert_eq!(fs.readlink(&ctx, "/alias").unwrap(), "/real");
        let st = fs.stat(&ctx, "/alias").unwrap();
        assert!(st.is_dir(), "stat follows the link");
    }

    #[test]
    fn symlink_loop_detected() {
        let (fs, ctx) = fs();
        fs.symlink(&ctx, "/b", "/a").unwrap();
        fs.symlink(&ctx, "/a", "/b").unwrap();
        assert_eq!(fs.stat(&ctx, "/a"), Err(FsError::TooManyLinks));
    }

    #[test]
    fn permissions_enforced_for_non_root() {
        let (fs, root) = fs();
        fs.mkdir(&root, "/secret", FileMode::dir(0o700)).unwrap();
        fs.write_file(&root, "/secret/k", b"x").unwrap();
        fs.write_file(&root, "/public", b"y").unwrap();
        fs.chmod(&root, "/public", 0o600).unwrap();
        let user = ProcCtx::new(2, Credentials::user(1000, 1000));
        assert_eq!(fs.stat(&user, "/secret/k"), Err(FsError::Access));
        assert_eq!(
            fs.open(&user, "/public", OpenFlags::RDONLY, FileMode::default()),
            Err(FsError::Access)
        );
        assert_eq!(fs.chmod(&user, "/public", 0o777), Err(FsError::Access));
    }

    #[test]
    fn truncate_open_flag_clears() {
        let (fs, ctx) = fs();
        fs.write_file(&ctx, "/t", b"0123456789").unwrap();
        let fd = fs.open(&ctx, "/t", OpenFlags::CREATE, FileMode::default()).unwrap();
        assert_eq!(fs.fstat(&ctx, fd).unwrap().size, 0);
        fs.close(&ctx, fd).unwrap();
    }

    #[test]
    fn fallocate_extends() {
        let (fs, ctx) = fs();
        let fd = fs.open(&ctx, "/big", OpenFlags::CREATE, FileMode::default()).unwrap();
        fs.fallocate(&ctx, fd, 0, 1 << 20).unwrap();
        assert_eq!(fs.fstat(&ctx, fd).unwrap().size, 1 << 20);
        fs.close(&ctx, fd).unwrap();
    }

    #[test]
    fn unlinked_open_file_still_readable() {
        let (fs, ctx) = fs();
        fs.write_file(&ctx, "/gone", b"ghost").unwrap();
        let fd = fs.open(&ctx, "/gone", OpenFlags::RDONLY, FileMode::default()).unwrap();
        fs.unlink(&ctx, "/gone").unwrap();
        // RefFs removes the node; readers get BadFd — acceptable oracle
        // behaviour documented here (evaluated FSes keep data until close).
        let mut buf = [0u8; 5];
        let _ = fs.pread(&ctx, fd, &mut buf, 0);
        fs.close(&ctx, fd).unwrap();
    }

    #[test]
    fn set_times_updates_stat() {
        let (fs, ctx) = fs();
        fs.write_file(&ctx, "/f", b"").unwrap();
        fs.set_times(&ctx, "/f", 111, 222).unwrap();
        let st = fs.stat(&ctx, "/f").unwrap();
        assert_eq!((st.atime, st.mtime), (111, 222));
    }
}
